"""Pure-Python HDF5-like parallel file library.

Real HDF5 cannot be modified from Python, and the paper's scheme needs
*deep* integration: write offsets computed before compression, reserved
extra space inside dataset extents, an overflow region appended to the
shared file, and asynchronous independent writes (the async VOL).  This
package provides an HDF5-shaped library that exposes exactly those
integration points:

* :class:`~repro.hdf5.file.File` / :class:`~repro.hdf5.group.Group` /
  :class:`~repro.hdf5.dataset.Dataset` — the familiar object hierarchy with
  attributes and path addressing;
* :mod:`~repro.hdf5.filters` — a dynamically registered filter pipeline
  (SZ under its real H5Z id 32017, ZFP under 32013, deflate, shuffle);
* :mod:`~repro.hdf5.storage` — a shared-file space allocator with explicit
  reservation (the paper's "extra space") and end-of-file append (the
  overflow region);
* :mod:`~repro.hdf5.vol` / :mod:`~repro.hdf5.async_io` — a virtual object
  layer with a synchronous native connector and a background-thread async
  connector mirroring HDF5's async VOL (Tang et al., TPDS 2022).

The on-disk container is self-describing (binary header + JSON footer) but
deliberately *not* the HDF5 binary specification — see DESIGN.md §6.
"""

from repro.hdf5.async_io import AsyncIOEngine, AsyncRequest, EventSet
from repro.hdf5.dataset import Dataset
from repro.hdf5.datatype import dtype_from_tag, dtype_tag
from repro.hdf5.file import File
from repro.hdf5.filters import (
    FILTER_DEFLATE,
    FILTER_SHUFFLE,
    FILTER_SZ,
    FILTER_ZFP,
    FilterPipeline,
    FilterSpec,
    available_filters,
    register_filter,
)
from repro.hdf5.group import Group
from repro.hdf5.properties import (
    DatasetCreateProps,
    FileAccessProps,
    TransferProps,
)
from repro.hdf5.vol import AsyncVOL, NativeVOL, VOLConnector

__all__ = [
    "File",
    "Group",
    "Dataset",
    "FilterPipeline",
    "FilterSpec",
    "FILTER_SZ",
    "FILTER_ZFP",
    "FILTER_DEFLATE",
    "FILTER_SHUFFLE",
    "available_filters",
    "register_filter",
    "dtype_tag",
    "dtype_from_tag",
    "DatasetCreateProps",
    "FileAccessProps",
    "TransferProps",
    "VOLConnector",
    "NativeVOL",
    "AsyncVOL",
    "AsyncIOEngine",
    "AsyncRequest",
    "EventSet",
]
