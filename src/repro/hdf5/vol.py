"""Virtual Object Layer: pluggable routing of dataset I/O.

HDF5 1.13 introduced the VOL so storage operations can be intercepted; the
async VOL connector is what the paper leans on to overlap compression with
writes.  Here:

* :class:`VOLConnector` — the interface (three operations suffice for the
  paper's pipeline: raw partition write, overflow write, chunk write);
* :class:`NativeVOL` — executes synchronously against the file;
* :class:`AsyncVOL` — wraps another connector, queueing each operation on
  the file's background engine and returning an :class:`AsyncRequest`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.hdf5.async_io import AsyncIOEngine, AsyncRequest, EventSet
from repro.hdf5.dataset import Dataset


class VOLConnector(ABC):
    """Storage-operation routing interface."""

    @abstractmethod
    def partition_write(self, dataset: Dataset, index: int, payload: bytes) -> Any:
        """Write a compressed partition into its declared slot."""

    @abstractmethod
    def overflow_write(self, dataset: Dataset, index: int, tail: bytes, offset: int) -> Any:
        """Write a partition's overflow tail at a computed offset."""

    @abstractmethod
    def chunk_write(self, dataset: Dataset, coords: Sequence[int], data: np.ndarray) -> Any:
        """Write one chunk through the filter pipeline."""

    @abstractmethod
    def slab_write(self, dataset: Dataset, data: np.ndarray, start: Sequence[int]) -> Any:
        """Write a raw hyperslab (non-compressed path)."""


class NativeVOL(VOLConnector):
    """Synchronous pass-through connector."""

    def partition_write(self, dataset: Dataset, index: int, payload: bytes) -> int:
        return dataset.write_partition(index, payload)

    def overflow_write(self, dataset: Dataset, index: int, tail: bytes, offset: int) -> None:
        dataset.write_partition_overflow(index, tail, offset)

    def chunk_write(self, dataset: Dataset, coords: Sequence[int], data: np.ndarray) -> int:
        return dataset.write_chunk(coords, data)

    def slab_write(self, dataset: Dataset, data: np.ndarray, start: Sequence[int]) -> None:
        dataset.write_slab(data, start)


class AsyncVOL(VOLConnector):
    """Connector queueing operations on background threads.

    Each operation returns an :class:`AsyncRequest`; passing an
    :class:`EventSet` tracks them for bulk waiting (the HDF5 idiom
    ``H5Dwrite_async(..., es_id)`` → ``H5ESwait``).
    """

    def __init__(
        self,
        engine: AsyncIOEngine,
        inner: VOLConnector | None = None,
        event_set: EventSet | None = None,
    ) -> None:
        self.engine = engine
        self.inner = inner or NativeVOL()
        self.event_set = event_set

    def _track(self, req: AsyncRequest) -> AsyncRequest:
        if self.event_set is not None:
            self.event_set.add(req)
        return req

    def partition_write(self, dataset: Dataset, index: int, payload: bytes) -> AsyncRequest:
        return self._track(
            self.engine.submit(
                lambda: self.inner.partition_write(dataset, index, payload),
                label=f"partition_write[{dataset.path}#{index}]",
            )
        )

    def overflow_write(
        self, dataset: Dataset, index: int, tail: bytes, offset: int
    ) -> AsyncRequest:
        return self._track(
            self.engine.submit(
                lambda: self.inner.overflow_write(dataset, index, tail, offset),
                label=f"overflow_write[{dataset.path}#{index}]",
            )
        )

    def chunk_write(
        self, dataset: Dataset, coords: Sequence[int], data: np.ndarray
    ) -> AsyncRequest:
        coords = tuple(coords)
        return self._track(
            self.engine.submit(
                lambda: self.inner.chunk_write(dataset, coords, data),
                label=f"chunk_write[{dataset.path}@{coords}]",
            )
        )

    def slab_write(self, dataset: Dataset, data: np.ndarray, start: Sequence[int]) -> AsyncRequest:
        start = tuple(start)
        return self._track(
            self.engine.submit(
                lambda: self.inner.slab_write(dataset, data, start),
                label=f"slab_write[{dataset.path}@{start}]",
            )
        )
