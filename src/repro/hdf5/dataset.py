"""Datasets: contiguous, chunked+filtered, and declared-partition layouts.

Three layouts cover the paper's three write paths:

``contiguous``
    Raw array bytes at one (offset, size) — the non-compression baseline.

``chunked``
    A chunk index mapping chunk coordinates to (offset, stored size); each
    chunk passes through the filter pipeline — the H5Z-SZ baseline.  As in
    parallel HDF5 with filters, writes must be whole-chunk.

``declared``
    The paper's deep integration: a partition table whose offsets and
    reserved extents were computed *before compression* from predicted
    sizes (plus extra space).  Ranks write their compressed streams
    independently into their reserved slots; payload beyond the slot is
    redirected by the caller to an overflow region at end-of-file and
    recorded per partition.  The table itself is the "metadata for the
    decompression purpose" the paper describes (≈ KBs, negligible).
"""

from __future__ import annotations

import json
import threading
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.cache import get_cache
from repro.errors import FileFormatError, HDF5Error, InvalidStateError
from repro.hdf5.datatype import dtype_from_tag, dtype_tag
from repro.hdf5.filters import FilterPipeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec import Executor
    from repro.hdf5.file import File


def _decode_partition_cell(item: tuple) -> np.ndarray:
    """Decode one partition payload (module-level: picklable for the
    process backend — raw bytes travel, open file handles do not)."""
    payload, shape, dtype_str, filters_json = item
    return FilterPipeline.from_json(filters_json).invert(payload, shape, dtype_str)


class PartitionEntry:
    """One declared partition slot."""

    __slots__ = (
        "index",
        "offset",
        "reserved",
        "actual",
        "overflow_offset",
        "overflow_nbytes",
        "region",
    )

    def __init__(
        self,
        index: int,
        offset: int,
        reserved: int,
        actual: int = 0,
        overflow_offset: int = 0,
        overflow_nbytes: int = 0,
        region: list | None = None,
    ) -> None:
        self.index = index
        self.offset = offset
        self.reserved = reserved
        self.actual = actual
        self.overflow_offset = overflow_offset
        self.overflow_nbytes = overflow_nbytes
        self.region = region

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "offset": self.offset,
            "reserved": self.reserved,
            "actual": self.actual,
            "overflow_offset": self.overflow_offset,
            "overflow_nbytes": self.overflow_nbytes,
            "region": self.region,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "PartitionEntry":
        return cls(**blob)


class Dataset:
    """An n-dimensional array object inside a :class:`~repro.hdf5.file.File`."""

    def __init__(
        self,
        file: "File",
        path: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
        layout: str = "contiguous",
        chunks: tuple[int, ...] | None = None,
        filters: FilterPipeline | None = None,
    ) -> None:
        if layout not in ("contiguous", "chunked", "declared"):
            raise HDF5Error(f"unknown layout {layout!r}")
        if layout == "chunked" and chunks is None:
            raise HDF5Error("chunked layout requires a chunk shape")
        if layout == "chunked" and len(chunks) != len(shape):
            raise HDF5Error("chunk rank must match dataset rank")
        self.file = file
        self.path = path
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        dtype_tag(self.dtype)  # validate early
        self.layout = layout
        self.chunks = tuple(int(c) for c in chunks) if chunks else None
        self.filters = filters or FilterPipeline()
        self.attrs: dict = {}
        self._lock = threading.Lock()
        self._filters_digest: str | None = None  # lazy cache-key component
        # contiguous state
        self._data_offset: int | None = None
        # chunked state: "i,j,k" -> [offset, stored_nbytes]
        self._chunk_index: dict[str, list[int]] = {}
        # declared state
        self._partitions: dict[int, PartitionEntry] = {}

    # -- common -------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        """Logical (uncompressed) size in bytes."""
        return self.size * self.dtype.itemsize

    def _require_writable(self) -> None:
        self.file.require_writable()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Dataset {self.path!r} shape={self.shape} dtype={self.dtype} layout={self.layout}>"

    # -- contiguous layout ---------------------------------------------------

    def write(self, data: np.ndarray) -> None:
        """Write the full array (contiguous layout only)."""
        if self.layout != "contiguous":
            raise HDF5Error(f"write() requires contiguous layout, not {self.layout}")
        self._require_writable()
        data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.shape != self.shape:
            raise HDF5Error(f"shape mismatch: {data.shape} != {self.shape}")
        with self._lock:
            if self._data_offset is None:
                self._data_offset = self.file.storage.allocate(self.nbytes)
        self.file.storage.write_at(data.tobytes(), self._data_offset)

    def write_slab(self, data: np.ndarray, start: Sequence[int]) -> None:
        """Write a hyperslab at element coordinates ``start`` (contiguous).

        The slab must be contiguous in file order, i.e. it must span full
        trailing dimensions (the common row-block decomposition); this is
        the restriction that makes independent parallel writes trivial.
        """
        if self.layout != "contiguous":
            raise HDF5Error("write_slab() requires contiguous layout")
        self._require_writable()
        data = np.ascontiguousarray(data, dtype=self.dtype)
        if len(start) != len(self.shape):
            raise HDF5Error("start rank mismatch")
        if data.shape[1:] != self.shape[1:] or any(s != 0 for s in start[1:]):
            raise HDF5Error("slab must span full trailing dimensions")
        if start[0] + data.shape[0] > self.shape[0]:
            raise HDF5Error("slab out of bounds")
        with self._lock:
            if self._data_offset is None:
                self._data_offset = self.file.storage.allocate(self.nbytes)
        row_bytes = self.nbytes // self.shape[0] if self.shape[0] else 0
        self.file.storage.write_at(
            data.tobytes(), self._data_offset + start[0] * row_bytes
        )

    def read(self, executor: "Executor | None" = None) -> np.ndarray:
        """Read the full array back (any layout).

        ``executor`` optionally fans the declared layout's per-partition
        decodes out through :meth:`repro.exec.Executor.map_cells`; the
        serial default is bit-identical.
        """
        if self.layout == "contiguous":
            if self._data_offset is None:
                raise InvalidStateError("dataset has no data yet")
            blob = self.file.storage.read_at(self.nbytes, self._data_offset)
            if len(blob) != self.nbytes:
                raise FileFormatError("contiguous data truncated")
            return np.frombuffer(blob, dtype=self.dtype).reshape(self.shape).copy()
        if self.layout == "chunked":
            return self._read_chunked()
        return self._read_declared(executor)

    # -- chunked layout ------------------------------------------------------

    def _chunk_key(self, coords: Sequence[int]) -> str:
        return ",".join(str(int(c)) for c in coords)

    def _chunk_slices(self, coords: Sequence[int]) -> tuple[slice, ...]:
        return tuple(
            slice(c * ch, min((c + 1) * ch, s))
            for c, ch, s in zip(coords, self.chunks, self.shape)
        )

    def write_chunk(self, coords: Sequence[int], data: np.ndarray) -> int:
        """Write one whole chunk through the filter pipeline.

        Returns the stored (post-filter) size in bytes.
        """
        if self.layout != "chunked":
            raise HDF5Error("write_chunk() requires chunked layout")
        self._require_writable()
        if len(coords) != len(self.shape):
            raise HDF5Error("chunk coordinate rank mismatch")
        slices = self._chunk_slices(coords)
        expected = tuple(s.stop - s.start for s in slices)
        if any(s.start >= dim for s, dim in zip(slices, self.shape)):
            raise HDF5Error(f"chunk {tuple(coords)} out of bounds")
        data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.shape != expected:
            raise HDF5Error(f"chunk shape mismatch: {data.shape} != {expected}")
        payload = self.filters.apply(data) if self.filters else data.tobytes()
        offset = self.file.storage.allocate(len(payload))
        self.file.storage.write_at(payload, offset)
        with self._lock:
            self._chunk_index[self._chunk_key(coords)] = [offset, len(payload)]
        return len(payload)

    def read_chunk(self, coords: Sequence[int]) -> np.ndarray:
        """Read one chunk back through the filter pipeline."""
        if self.layout != "chunked":
            raise HDF5Error("read_chunk() requires chunked layout")
        key = self._chunk_key(coords)
        try:
            offset, stored = self._chunk_index[key]
        except KeyError:
            raise InvalidStateError(f"chunk {key} was never written") from None
        payload = self.file.storage.read_at(stored, offset)
        slices = self._chunk_slices(coords)
        shape = tuple(s.stop - s.start for s in slices)
        if self.filters:
            return self.filters.invert(payload, shape, dtype_tag(self.dtype))
        return np.frombuffer(payload, dtype=self.dtype).reshape(shape).copy()

    def _read_chunked(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        counts = [-(-s // c) for s, c in zip(self.shape, self.chunks)]
        total = int(np.prod(counts)) if counts else 0
        for flat in range(total):
            coords = []
            rem = flat
            for c in reversed(counts):
                coords.append(rem % c)
                rem //= c
            coords.reverse()
            if self._chunk_key(coords) in self._chunk_index:
                out[self._chunk_slices(coords)] = self.read_chunk(coords)
        return out

    @property
    def stored_nbytes(self) -> int:
        """Bytes of file space this dataset occupies (compressed/reserved)."""
        if self.layout == "contiguous":
            return self.nbytes if self._data_offset is not None else 0
        if self.layout == "chunked":
            return sum(v[1] for v in self._chunk_index.values())
        return sum(p.reserved + p.overflow_nbytes for p in self._partitions.values())

    # -- declared layout -----------------------------------------------------

    def declare_partitions(
        self,
        offsets: Sequence[int],
        reserved: Sequence[int],
        regions: Sequence | None = None,
    ) -> None:
        """Install the pre-computed partition table (paper Section III-D).

        ``offsets``/``reserved`` come from the all-gathered predicted sizes
        plus extra space; every rank computes the same table, so this call
        is idempotent across ranks as long as the tables agree.
        """
        if self.layout != "declared":
            raise HDF5Error("declare_partitions() requires declared layout")
        self._require_writable()
        if len(offsets) != len(reserved):
            raise HDF5Error("offsets/reserved length mismatch")
        if regions is not None and len(regions) != len(offsets):
            raise HDF5Error("regions length mismatch")
        entries = {}
        prev_end = None
        for i, (off, res) in enumerate(zip(offsets, reserved)):
            if res < 0 or off < 0:
                raise HDF5Error("negative offset/reservation")
            if prev_end is not None and off < prev_end:
                raise HDF5Error("partition slots overlap")
            prev_end = off + res
            entries[i] = PartitionEntry(
                index=i,
                offset=int(off),
                reserved=int(res),
                region=list(regions[i]) if regions is not None else None,
            )
        with self._lock:
            if self._partitions:
                # Idempotent re-declaration must match exactly.
                if len(self._partitions) != len(entries) or any(
                    self._partitions[i].offset != e.offset
                    or self._partitions[i].reserved != e.reserved
                    for i, e in entries.items()
                ):
                    raise HDF5Error("conflicting partition re-declaration")
                return
            self._partitions = entries
        if entries:
            last = entries[len(entries) - 1]
            self.file.storage.place_at(
                min(e.offset for e in entries.values()),
                last.offset + last.reserved - min(e.offset for e in entries.values()),
            )

    @property
    def n_partitions(self) -> int:
        """Number of declared partitions."""
        return len(self._partitions)

    def partition(self, index: int) -> PartitionEntry:
        """The table entry for one partition."""
        try:
            return self._partitions[index]
        except KeyError:
            raise InvalidStateError(f"partition {index} not declared") from None

    def write_partition(self, index: int, payload: bytes) -> int:
        """Write a compressed stream into its reserved slot.

        Writes what fits; returns the number of *overflow* bytes that did
        not fit (0 in the common case).  The caller redirects the tail via
        :meth:`write_partition_overflow` — mirroring the paper's Fig. 8.
        """
        self._require_writable()
        entry = self.partition(index)
        fits = min(len(payload), entry.reserved)
        if fits:
            self.file.storage.write_at(payload[:fits], entry.offset)
        with self._lock:
            entry.actual = len(payload)
        get_cache().invalidate(self.file.cache_token, self.path, index)
        return len(payload) - fits

    def write_partition_overflow(self, index: int, tail: bytes, offset: int) -> None:
        """Store the overflow tail at an externally computed file offset."""
        self._require_writable()
        entry = self.partition(index)
        expected_tail = max(0, entry.actual - entry.reserved)
        if len(tail) != expected_tail:
            raise HDF5Error(
                f"overflow tail size {len(tail)} != expected {expected_tail}"
            )
        self.file.storage.write_at(tail, offset)
        self.file.storage.place_at(offset, len(tail))
        with self._lock:
            entry.overflow_offset = offset
            entry.overflow_nbytes = len(tail)
        get_cache().invalidate(self.file.cache_token, self.path, index)

    def read_partition(self, index: int) -> bytes:
        """Reassemble one partition's stream (slot + overflow tail)."""
        entry = self.partition(index)
        if entry.actual == 0:
            raise InvalidStateError(f"partition {index} was never written")
        main = self.file.storage.read_at(min(entry.actual, entry.reserved), entry.offset)
        if entry.actual > entry.reserved:
            if entry.overflow_nbytes != entry.actual - entry.reserved:
                raise FileFormatError(f"partition {index} overflow missing")
            tail = self.file.storage.read_at(entry.overflow_nbytes, entry.overflow_offset)
            return main + tail
        return main

    def read_region(
        self, slices: Sequence[slice], executor: "Executor | None" = None
    ) -> np.ndarray:
        """Read a rectangular sub-region of the dataset.

        For the declared layout only the partitions whose recorded regions
        intersect the request are decoded — the partial-read path the
        facade's ``ds[a:b, ...]`` indexing rides on.  ``executor``
        optionally decodes the intersecting partitions in parallel (the
        serial default is bit-identical).  Contiguous and chunked layouts
        fall back to a full read plus slicing.
        """
        if len(slices) != len(self.shape):
            raise HDF5Error("region rank mismatch")
        bounds = []
        for sl, dim in zip(slices, self.shape):
            start, stop, step = sl.indices(dim)
            if step != 1:
                raise HDF5Error("strided region reads are not supported")
            bounds.append((start, max(start, stop)))
        if self.layout != "declared":
            return self.read()[tuple(slice(a, b) for a, b in bounds)]
        out = np.zeros(tuple(b - a for a, b in bounds), dtype=self.dtype)
        targets = []
        for index, entry in sorted(self._partitions.items()):
            if entry.region is None:
                raise HDF5Error("cannot read by region: partitions carry no regions")
            clipped = [
                (max(a, ra), min(b, rb))
                for (a, b), (ra, rb) in zip(bounds, entry.region)
            ]
            if any(a >= b for a, b in clipped):
                continue  # no overlap with the request
            targets.append((index, entry, clipped))
        blocks = self._partition_arrays([t[0] for t in targets], executor)
        for (index, entry, clipped), block in zip(targets, blocks):
            src = tuple(
                slice(a - ra, b - ra)
                for (a, b), (ra, _) in zip(clipped, entry.region)
            )
            dst = tuple(
                slice(a - qa, b - qa)
                for (a, b), (qa, _) in zip(clipped, bounds)
            )
            out[dst] = block[src]
        return out

    def _cache_key(self, index: int) -> tuple[int, str, int, str]:
        """The partition's decoded-cache key: (file, path, index, filters).

        The filters digest covers every pipeline option — error bound
        included — so a re-declared bound can never serve stale decodes.
        """
        if self._filters_digest is None:
            self._filters_digest = json.dumps(self.filters.to_json(), sort_keys=True)
        return (self.file.cache_token, self.path, index, self._filters_digest)

    def _partition_shape(self, entry: PartitionEntry) -> tuple[int, ...] | None:
        # Region-less partitions decode against the stream's self-described
        # shape (shape=None skips the cross-check); a recorded region —
        # including a zero-size one — is verified exactly.
        return (
            tuple(b - a for a, b in entry.region)
            if entry.region is not None
            else None
        )

    def read_partition_array(self, index: int) -> np.ndarray:
        """Decode one partition through the (array) filter pipeline.

        Decoded arrays are served **read-only** from the process-wide
        decoded-partition cache (:mod:`repro.cache`); copy before mutating.
        """
        cached = get_cache().get(self._cache_key(index))
        if cached is not None:
            self.file.read_stats.record_hit()
            return cached
        payload = self.read_partition(index)
        if not self.filters.has_array_filter:
            raise HDF5Error("declared dataset has no array filter to decode with")
        entry = self.partition(index)
        data = self.filters.invert(
            payload, self._partition_shape(entry), dtype_tag(self.dtype)
        )
        self.file.read_stats.record_decode(data.nbytes)
        return get_cache().put(self._cache_key(index), data)

    def _partition_arrays(
        self, indexes: Sequence[int], executor: "Executor | None" = None
    ) -> list[np.ndarray]:
        """Decoded (read-only) arrays for ``indexes``, in order.

        Cache hits are collected up front; the remaining decodes either run
        inline (serial / no executor) or fan out through
        ``executor.map_cells`` on raw payload bytes — picklable items and a
        module-level cell function, so the process backend works too.  The
        slot/overflow ``pread`` calls stay on the calling thread: positioned
        reads are cheap and thread-safe, decode is the CPU-bound part.
        """
        indexes = list(indexes)
        if (
            executor is None
            or not getattr(executor, "cells_parallel_here", False)
            or len(indexes) <= 1
        ):
            return [self.read_partition_array(i) for i in indexes]
        cache = get_cache()
        results: dict[int, np.ndarray] = {}
        misses: list[int] = []
        for i in indexes:
            hit = cache.get(self._cache_key(i))
            if hit is not None:
                self.file.read_stats.record_hit()
                results[i] = hit
            else:
                misses.append(i)
        if misses:
            if not self.filters.has_array_filter:
                raise HDF5Error("declared dataset has no array filter to decode with")
            filters_json = self.filters.to_json()
            dtype_str = dtype_tag(self.dtype)
            items = [
                (
                    self.read_partition(i),
                    self._partition_shape(self.partition(i)),
                    dtype_str,
                    filters_json,
                )
                for i in misses
            ]
            for i, data in zip(misses, executor.map_cells(_decode_partition_cell, items)):
                self.file.read_stats.record_decode(data.nbytes)
                results[i] = cache.put(self._cache_key(i), data)
        return [results[i] for i in indexes]

    def _read_declared(self, executor: "Executor | None" = None) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        entries = sorted(self._partitions.items())
        for _, entry in entries:
            if entry.region is None:
                raise HDF5Error("cannot reassemble: partitions carry no regions")
        blocks = self._partition_arrays([i for i, _ in entries], executor)
        for (_, entry), data in zip(entries, blocks):
            sl = tuple(slice(a, b) for a, b in entry.region)
            out[sl] = data
        return out

    # -- footer serialization -------------------------------------------------

    def to_json(self) -> dict:
        """Footer representation of this dataset's metadata."""
        blob = {
            "shape": list(self.shape),
            "dtype": dtype_tag(self.dtype),
            "layout": self.layout,
            "chunks": list(self.chunks) if self.chunks else None,
            "filters": self.filters.to_json(),
            "attrs": dict(self.attrs),
        }
        if self.layout == "contiguous":
            blob["data_offset"] = self._data_offset
        elif self.layout == "chunked":
            blob["chunk_index"] = dict(self._chunk_index)
        else:
            blob["partitions"] = [
                e.to_json() for _, e in sorted(self._partitions.items())
            ]
        return blob

    @classmethod
    def from_json(cls, file: "File", path: str, blob: dict) -> "Dataset":
        """Rebuild a dataset object from footer metadata."""
        ds = cls(
            file=file,
            path=path,
            shape=tuple(blob["shape"]),
            dtype=dtype_from_tag(blob["dtype"]),
            layout=blob["layout"],
            chunks=tuple(blob["chunks"]) if blob.get("chunks") else None,
            filters=FilterPipeline.from_json(blob.get("filters", [])),
        )
        ds.attrs = dict(blob.get("attrs", {}))
        if ds.layout == "contiguous":
            ds._data_offset = blob.get("data_offset")
        elif ds.layout == "chunked":
            ds._chunk_index = {k: list(v) for k, v in blob.get("chunk_index", {}).items()}
        else:
            for e in blob.get("partitions", []):
                entry = PartitionEntry.from_json(e)
                ds._partitions[entry.index] = entry
        return ds
