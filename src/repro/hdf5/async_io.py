"""Asynchronous I/O engine (the async VOL's backing threads).

HDF5's async VOL connector (Tang et al., "Transparent Asynchronous Parallel
I/O Using Background Threads", TPDS 2022) queues I/O operations onto
background threads and hands the caller a request handle; an *event set*
groups requests so completion can be awaited en masse.  This module is that
mechanism: a small thread pool, :class:`AsyncRequest` handles with
``wait()``/``done`` semantics and failure propagation, and
:class:`EventSet` mirroring HDF5's ``es_id``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

from repro.errors import InvalidStateError


class AsyncRequest:
    """Handle for one queued operation."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """True once the operation finished (successfully or not)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until completion; re-raises the operation's exception."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"async request {self.label!r} timed out")
        if self._error is not None:
            raise self._error
        return self._value

    def _complete(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class AsyncIOEngine:
    """Fixed pool of background writer threads."""

    def __init__(self, workers: int = 2) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._queue: queue.Queue = queue.Queue()
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"async-io-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    def submit(self, fn: Callable[[], Any], label: str = "") -> AsyncRequest:
        """Queue ``fn`` for background execution; returns its handle."""
        if self._shutdown:
            raise InvalidStateError("async engine is shut down")
        req = AsyncRequest(label)
        self._queue.put((fn, req))
        return req

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, req = item
            try:
                req._complete(fn())
            except BaseException as err:  # noqa: BLE001 - stored on the handle
                req._fail(err)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain the queue and stop the workers (idempotent)."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout)

    def __enter__(self) -> "AsyncIOEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


class EventSet:
    """Groups async requests for bulk completion (HDF5 ``es_id`` analogue)."""

    def __init__(self) -> None:
        self._requests: list[AsyncRequest] = []
        self._lock = threading.Lock()

    def add(self, request: AsyncRequest) -> AsyncRequest:
        """Track a request; returns it for chaining."""
        with self._lock:
            self._requests.append(request)
        return request

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def n_pending(self) -> int:
        """Requests not yet completed."""
        return sum(not r.done for r in self._requests)

    def wait_all(self, timeout: float | None = None) -> list[Any]:
        """Wait for every tracked request; returns their values in order.

        The first failure is re-raised after all requests have settled, so
        no background work is abandoned mid-flight.
        """
        with self._lock:
            requests = list(self._requests)
        results: list[Any] = []
        first_error: BaseException | None = None
        for r in requests:
            try:
                results.append(r.wait(timeout))
            except BaseException as err:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = err
                results.append(None)
        if first_error is not None:
            raise first_error
        return results
