"""Property lists (the HDF5 plist idiom).

HDF5 parameterizes operations through property lists rather than keyword
sprawl; the writers in :mod:`repro.core` do the same, so configurations are
explicit objects that can be logged and compared in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class FileAccessProps:
    """How a file is opened (fapl analogue)."""

    #: enable the background-thread async VOL connector.
    async_io: bool = False
    #: writer threads for the async engine.
    async_workers: int = 2
    #: byte alignment for allocations (HDF5's H5Pset_alignment).
    alignment: int = 8

    def __post_init__(self) -> None:
        if self.async_workers <= 0:
            raise ConfigError("async_workers must be positive")
        if self.alignment <= 0 or (self.alignment & (self.alignment - 1)):
            raise ConfigError("alignment must be a positive power of two")


@dataclass(frozen=True)
class DatasetCreateProps:
    """How a dataset is laid out (dcpl analogue)."""

    #: chunk shape for the filtered/chunked layout (None = contiguous).
    chunks: tuple[int, ...] | None = None
    #: filter pipeline entries: list of (filter_id, options dict).
    filters: tuple[tuple[int, dict], ...] = ()

    def __post_init__(self) -> None:
        if self.chunks is not None:
            if len(self.chunks) == 0 or any(c <= 0 for c in self.chunks):
                raise ConfigError("chunk dimensions must be positive")
        if self.filters and self.chunks is None:
            raise ConfigError("filters require a chunked layout (as in HDF5)")


@dataclass(frozen=True)
class TransferProps:
    """How a write is performed (dxpl analogue)."""

    #: "independent" (each rank on its own) or "collective" (synchronized).
    mode: str = "independent"

    def __post_init__(self) -> None:
        if self.mode not in ("independent", "collective"):
            raise ConfigError(f"unknown transfer mode {self.mode!r}")
