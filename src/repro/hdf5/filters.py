"""Dynamically registered filter pipeline (H5Z analogue).

HDF5 filters transform chunk buffers on the way to/from storage and are
identified by numeric ids; H5Z-SZ registers SZ under id 32017 and H5Z-ZFP
uses 32013 — we keep the same ids so configurations read naturally.

A :class:`FilterPipeline` is an ordered list of :class:`FilterSpec`; apply
runs front-to-back on write, invert runs back-to-front on read.  Array
filters (SZ/ZFP) must be first in the pipeline since they consume the
ndarray; byte filters (shuffle/deflate) operate on the byte stream after.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.compression.codec import get_codec
from repro.errors import FilterError
from repro.hdf5.datatype import dtype_from_tag, dtype_tag

#: HDF5-registered ids (matching the real registry where one exists).
FILTER_DEFLATE = 1
FILTER_SHUFFLE = 2
FILTER_SZ = 32017
FILTER_ZFP = 32013


@dataclass(frozen=True)
class FilterSpec:
    """One pipeline stage: a registered filter id plus its options."""

    filter_id: int
    options: dict = field(default_factory=dict)

    def to_json(self) -> list:
        """Footer representation."""
        return [self.filter_id, dict(self.options)]

    @classmethod
    def from_json(cls, blob: list) -> "FilterSpec":
        return cls(filter_id=int(blob[0]), options=dict(blob[1]))


class _FilterImpl:
    """Registered behaviour for one filter id."""

    def __init__(
        self,
        name: str,
        kind: str,  # "array" (ndarray -> bytes) or "bytes" (bytes -> bytes)
        apply: Callable,
        invert: Callable,
    ) -> None:
        self.name = name
        self.kind = kind
        self.apply = apply
        self.invert = invert


_REGISTRY: dict[int, _FilterImpl] = {}


def register_filter(
    filter_id: int, name: str, kind: str, apply: Callable, invert: Callable
) -> None:
    """Register a filter implementation under a numeric id."""
    if kind not in ("array", "bytes"):
        raise FilterError("kind must be 'array' or 'bytes'")
    _REGISTRY[filter_id] = _FilterImpl(name, kind, apply, invert)


def available_filters() -> dict[int, str]:
    """Mapping of registered ids to names."""
    return {fid: impl.name for fid, impl in sorted(_REGISTRY.items())}


def _lookup(filter_id: int) -> _FilterImpl:
    try:
        return _REGISTRY[filter_id]
    except KeyError:
        raise FilterError(f"unknown filter id {filter_id}") from None


# -- built-in byte filters ---------------------------------------------------


def _deflate_apply(payload: bytes, options: dict) -> bytes:
    return zlib.compress(payload, options.get("level", 4))


def _deflate_invert(payload: bytes, options: dict) -> bytes:
    return zlib.decompress(payload)


def _shuffle_apply(payload: bytes, options: dict) -> bytes:
    size = options.get("itemsize", 4)
    arr = np.frombuffer(payload, dtype=np.uint8)
    if size <= 1 or arr.size % size:
        return payload
    return arr.reshape(-1, size).T.copy().tobytes()


def _shuffle_invert(payload: bytes, options: dict) -> bytes:
    size = options.get("itemsize", 4)
    arr = np.frombuffer(payload, dtype=np.uint8)
    if size <= 1 or arr.size % size:
        return payload
    return arr.reshape(size, -1).T.copy().tobytes()


# -- built-in array filters (lossy codecs) -----------------------------------


def _sz_apply(data: np.ndarray, options: dict) -> bytes:
    codec = get_codec("sz", **options)
    return codec.compress(data)


def _sz_invert(payload: bytes, options: dict) -> np.ndarray:
    codec = get_codec("sz", **options)
    return codec.decompress(payload)


def _zfp_apply(data: np.ndarray, options: dict) -> bytes:
    codec = get_codec("zfp", **options)
    return codec.compress(data)


def _zfp_invert(payload: bytes, options: dict) -> np.ndarray:
    codec = get_codec("zfp", **options)
    return codec.decompress(payload)


register_filter(FILTER_DEFLATE, "deflate", "bytes", _deflate_apply, _deflate_invert)
register_filter(FILTER_SHUFFLE, "shuffle", "bytes", _shuffle_apply, _shuffle_invert)
register_filter(FILTER_SZ, "sz", "array", _sz_apply, _sz_invert)
register_filter(FILTER_ZFP, "zfp", "array", _zfp_apply, _zfp_invert)


class FilterPipeline:
    """Ordered filter chain applied to chunk buffers."""

    def __init__(self, specs: tuple[FilterSpec, ...] | list[FilterSpec] = ()) -> None:
        self.specs = tuple(specs)
        for i, spec in enumerate(self.specs):
            impl = _lookup(spec.filter_id)
            if impl.kind == "array" and i != 0:
                raise FilterError(
                    f"array filter {impl.name!r} must be first in the pipeline"
                )

    def __bool__(self) -> bool:
        return bool(self.specs)

    @property
    def has_array_filter(self) -> bool:
        """True if the first stage consumes the ndarray itself."""
        return bool(self.specs) and _lookup(self.specs[0].filter_id).kind == "array"

    def find(self, filter_id: int) -> FilterSpec | None:
        """The first spec registered under ``filter_id``, or None.

        The certification engine, the facade, and the inspector all
        recover a dataset's declared error bound this way — one lookup,
        not three hand-rolled loops.
        """
        for spec in self.specs:
            if spec.filter_id == filter_id:
                return spec
        return None

    def apply(self, data: np.ndarray) -> bytes:
        """Run the pipeline forward: ndarray -> stored chunk bytes."""
        specs = list(self.specs)
        if self.has_array_filter:
            spec = specs.pop(0)
            payload = _lookup(spec.filter_id).apply(data, spec.options)
        else:
            payload = np.ascontiguousarray(data).tobytes()
        for spec in specs:
            payload = _lookup(spec.filter_id).apply(payload, spec.options)
        return payload

    def invert(
        self, payload: bytes, shape: tuple[int, ...] | None, dtype_str: str
    ) -> np.ndarray:
        """Run the pipeline backward: stored chunk bytes -> ndarray.

        ``shape=None`` skips the shape cross-check and trusts the array
        filter's self-describing stream (used when a declared partition
        carries no region metadata); byte-only pipelines always need the
        shape to reconstruct the array.
        """
        specs = list(self.specs)
        array_spec = specs.pop(0) if self.has_array_filter else None
        for spec in reversed(specs):
            payload = _lookup(spec.filter_id).invert(payload, spec.options)
        if array_spec is not None:
            data = _lookup(array_spec.filter_id).invert(payload, array_spec.options)
            if shape is not None and tuple(data.shape) != tuple(shape):
                raise FilterError("array filter returned wrong shape")
            return data
        if shape is None:
            raise FilterError("byte-only pipeline cannot infer the array shape")
        dt = dtype_from_tag(dtype_str)
        expected = int(np.prod(shape)) * dt.itemsize
        if len(payload) != expected:
            raise FilterError("chunk byte length mismatch")
        return np.frombuffer(payload, dtype=dt).reshape(shape).copy()

    def to_json(self) -> list:
        """Footer representation."""
        return [s.to_json() for s in self.specs]

    @classmethod
    def from_json(cls, blob: list) -> "FilterPipeline":
        return cls(tuple(FilterSpec.from_json(b) for b in blob))
