"""Shared-file space management.

The file layout is::

    [ header | data region ....................... | footer (JSON) ]
      magic "PHD5", version, footer_ptr, footer_len

The allocator is append-only (end-of-data watermark) with power-of-two
alignment, guarded by a lock so thread ranks can allocate concurrently.
The lock covers *only* the watermark arithmetic — never the data I/O —
so concurrent rank writes through the thread backend proceed fully in
parallel (``os.pwrite`` at distinct offsets needs no locking); the
storage stress tests assert both properties.  Two operations matter to
the paper's scheme:

* :meth:`FileStorage.allocate` — claim ``nbytes`` (possibly *reserved*
  space larger than the payload: the extra-space mechanism);
* :meth:`FileStorage.place_at` — advance the watermark past a region whose
  offsets were computed *externally* (every rank computed the same offset
  table before compressing; nobody needs to ask the allocator).

Reads/writes go straight through the underlying
:class:`~repro.mpi.sharedfile.SharedFile` with positioned I/O.
"""

from __future__ import annotations

import json
import struct
import threading

from repro.errors import FileFormatError, InvalidStateError
from repro.mpi.sharedfile import SharedFile

_MAGIC = b"PHD5"
_HEADER = struct.Struct("<4sHxxQQ")  # magic, version, footer_ptr, footer_len
HEADER_SIZE = _HEADER.size
_VERSION = 1


class FileStorage:
    """Low-level container: header, append allocator, JSON footer."""

    def __init__(self, path: str, mode: str) -> None:
        if mode not in ("w", "r", "r+"):
            raise ValueError(f"unsupported mode {mode!r}")
        self.mode = mode
        self._lock = threading.Lock()
        if mode == "w":
            self.file = SharedFile(path, "w+")
            self._end = HEADER_SIZE
            self._footer: dict | None = None
            self.file.pwrite(_HEADER.pack(_MAGIC, _VERSION, 0, 0), 0)
        else:
            self.file = SharedFile(path, "r" if mode == "r" else "r+")
            header = self.file.pread(HEADER_SIZE, 0)
            if len(header) < HEADER_SIZE:
                raise FileFormatError("file too small for header")
            magic, version, footer_ptr, footer_len = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise FileFormatError("bad magic (not a PHD5 container)")
            if version != _VERSION:
                raise FileFormatError(f"unsupported container version {version}")
            if footer_ptr == 0:
                raise FileFormatError("file was not closed cleanly (no footer)")
            blob = self.file.pread(footer_len, footer_ptr)
            if len(blob) != footer_len:
                raise FileFormatError("footer truncated")
            try:
                self._footer = json.loads(blob.decode("utf-8"))
            except ValueError as err:
                raise FileFormatError(f"footer is not valid JSON: {err}") from None
            self._end = footer_ptr

    # -- allocation ---------------------------------------------------------

    def allocate(self, nbytes: int, alignment: int = 8) -> int:
        """Claim ``nbytes`` of file space; returns the region offset."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        with self._lock:
            offset = -(-self._end // alignment) * alignment
            self._end = offset + nbytes
            return offset

    def place_at(self, offset: int, nbytes: int) -> None:
        """Record an externally computed region so the watermark clears it."""
        if offset < HEADER_SIZE:
            raise ValueError("region overlaps the header")
        if nbytes < 0:
            raise ValueError("negative region size")
        with self._lock:
            self._end = max(self._end, offset + nbytes)

    @property
    def end_of_data(self) -> int:
        """Current allocation watermark (start of any future region)."""
        return self._end

    # -- raw I/O ------------------------------------------------------------

    def write_at(self, data: bytes, offset: int) -> int:
        """Positioned write (no allocation bookkeeping)."""
        return self.file.pwrite(data, offset)

    def read_at(self, nbytes: int, offset: int) -> bytes:
        """Positioned read."""
        return self.file.pread(nbytes, offset)

    # -- footer / lifecycle --------------------------------------------------

    @property
    def footer(self) -> dict | None:
        """Parsed footer for files opened read/append; None for fresh files."""
        return self._footer

    def finalize(self, footer: dict) -> None:
        """Write the JSON footer and patch the header pointer.

        Only the watermark reservation happens under the allocation lock;
        the footer and header writes run outside it, so a late concurrent
        writer is never serialized behind footer I/O.
        """
        blob = json.dumps(footer, sort_keys=True).encode("utf-8")
        with self._lock:
            ptr = self._end
            self._end = ptr + len(blob)  # reserve the footer region
        self.file.pwrite(blob, ptr)
        self.file.pwrite(_HEADER.pack(_MAGIC, _VERSION, ptr, len(blob)), 0)
        self._footer = footer

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        self.file.close()

    @property
    def closed(self) -> bool:
        """True once closed."""
        return self.file.closed

    def require_open(self) -> None:
        """Raise if the container was closed."""
        if self.closed:
            raise InvalidStateError("file is closed")
