"""Groups: the hierarchical namespace.

Groups link to sub-groups and datasets by name and support ``/``-separated
path addressing from any node, mirroring h5py ergonomics
(``f["fields/temperature"]``).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import HDF5Error, ObjectExistsError, ObjectNotFoundError
from repro.hdf5.dataset import Dataset
from repro.hdf5.filters import FilterPipeline, FilterSpec
from repro.hdf5.properties import DatasetCreateProps

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdf5.file import File


def _validate_name(name: str) -> str:
    if not name or "/" in name or name in (".", ".."):
        raise HDF5Error(f"invalid link name {name!r}")
    return name


class Group:
    """One namespace node; the root group has path ``/``."""

    def __init__(self, file: "File", path: str) -> None:
        self.file = file
        self.path = path
        self.attrs: dict = {}
        self._links: dict[str, object] = {}
        self._lock = threading.Lock()

    # -- creation -------------------------------------------------------------

    def _child_path(self, name: str) -> str:
        return (self.path.rstrip("/") + "/" + name) if self.path != "/" else "/" + name

    def create_group(self, name: str) -> "Group":
        """Create (and link) a sub-group; intermediate names not allowed."""
        self.file.require_writable()
        name = _validate_name(name)
        with self._lock:
            if name in self._links:
                raise ObjectExistsError(f"{self._child_path(name)} already exists")
            group = Group(self.file, self._child_path(name))
            self._links[name] = group
            return group

    def require_group(self, name: str) -> "Group":
        """Get-or-create a sub-group.

        Accepts ``/``-separated paths, creating intermediate groups on
        demand (``f.require_group("steps/0004/fields")`` — the per-time-step
        layout the streaming session writes).
        """
        node = self
        for part in [p for p in name.split("/") if p]:
            node = node._require_child(part)
        return node

    def _require_child(self, name: str) -> "Group":
        with self._lock:
            existing = self._links.get(name)
        if existing is not None:
            if not isinstance(existing, Group):
                raise HDF5Error(f"{self._child_path(name)} is not a group")
            return existing
        return self.create_group(name)

    def create_dataset(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        layout: str = "contiguous",
        dcpl: DatasetCreateProps | None = None,
    ) -> Dataset:
        """Create (and link) a dataset.

        A :class:`DatasetCreateProps` with chunks/filters selects the
        chunked+filtered layout automatically, as in HDF5.
        """
        self.file.require_writable()
        name = _validate_name(name)
        dcpl = dcpl or DatasetCreateProps()
        chunks = dcpl.chunks
        pipeline = FilterPipeline(tuple(FilterSpec(fid, opts) for fid, opts in dcpl.filters))
        if chunks is not None and layout == "contiguous":
            layout = "chunked"
        with self._lock:
            if name in self._links:
                raise ObjectExistsError(f"{self._child_path(name)} already exists")
            ds = Dataset(
                file=self.file,
                path=self._child_path(name),
                shape=shape,
                dtype=np.dtype(dtype),
                layout=layout,
                chunks=chunks,
                filters=pipeline,
            )
            self._links[name] = ds
            return ds

    # -- navigation -------------------------------------------------------------

    def __getitem__(self, path: str):
        """Resolve a relative ``/``-separated path to a group or dataset."""
        node: object = self
        for part in [p for p in path.split("/") if p]:
            if not isinstance(node, Group):
                raise ObjectNotFoundError(f"{path!r}: {part!r} is not a group")
            with node._lock:
                child = node._links.get(part)
            if child is None:
                raise ObjectNotFoundError(f"object {path!r} not found under {self.path!r}")
            node = child
        return node

    def __contains__(self, path: str) -> bool:
        try:
            self[path]
            return True
        except ObjectNotFoundError:
            return False

    def keys(self) -> list[str]:
        """Link names in insertion order."""
        with self._lock:
            return list(self._links)

    def items(self) -> list[tuple[str, object]]:
        """(name, object) pairs in insertion order."""
        with self._lock:
            return list(self._links.items())

    def groups(self) -> list["Group"]:
        """Directly linked sub-groups."""
        return [v for v in self._links.values() if isinstance(v, Group)]

    def datasets(self) -> list[Dataset]:
        """Directly linked datasets."""
        return [v for v in self._links.values() if isinstance(v, Dataset)]

    def visit(self):
        """Depth-first iterator over (path, object) for the whole subtree."""
        for name, obj in self.items():
            yield obj.path, obj
            if isinstance(obj, Group):
                yield from obj.visit()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Group {self.path!r} ({len(self._links)} links)>"
