"""Shared-memory communicator for thread ranks.

:class:`ThreadCommWorld` owns the shared state; each rank holds a
:class:`RankComm` facade exposing MPI-flavoured operations:

* ``barrier()`` — ``threading.Barrier`` under the hood;
* ``allgather(obj)`` — everyone contributes, everyone gets the full list;
* ``bcast(obj, root)`` / ``gather(obj, root)``;
* ``send(obj, dest, tag)`` / ``recv(source, tag)`` — per-(rank, tag) queues.

Collectives are *generation based*: each call allocates a slot list guarded
by a barrier pair, so back-to-back collectives never race.  Objects are
passed by reference (threads share memory) — callers follow the MPI
convention of not mutating buffers in flight; NumPy arrays communicated
through these calls should be treated as read-only by receivers.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.errors import CommunicatorError


class ThreadCommWorld:
    """Shared state for one group of thread ranks."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise CommunicatorError("communicator size must be positive")
        self.size = size
        self._barrier = threading.Barrier(size)
        self._lock = threading.Lock()
        self._slots: dict[str, list[Any]] = {}
        self._generation: dict[str, int] = {}
        self._queues: dict[tuple[int, int], queue.Queue] = {}

    def rank_comm(self, rank: int) -> "RankComm":
        """The communicator facade for one rank."""
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"rank {rank} out of range [0, {self.size})")
        return RankComm(self, rank)

    def comms(self) -> list["RankComm"]:
        """Facades for all ranks, rank order."""
        return [self.rank_comm(r) for r in range(self.size)]

    def _queue_for(self, dest: int, tag: int) -> queue.Queue:
        with self._lock:
            key = (dest, tag)
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def _slot_list(self, op: str) -> list[Any]:
        with self._lock:
            gen = self._generation.get(op, 0)
            key = f"{op}#{gen}"
            slots = self._slots.get(key)
            if slots is None:
                slots = self._slots[key] = [None] * self.size
            return slots

    def _advance(self, op: str) -> None:
        with self._lock:
            gen = self._generation.get(op, 0)
            self._slots.pop(f"{op}#{gen - 1}", None)  # free the previous round
            self._generation[op] = gen + 1


class RankComm:
    """One rank's view of the communicator."""

    def __init__(self, world: ThreadCommWorld, rank: int) -> None:
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.world.size

    def barrier(self) -> None:
        """Block until every rank arrives."""
        self.world._barrier.wait()

    def allgather(self, obj: Any) -> list[Any]:
        """Contribute ``obj``; receive every rank's contribution in order."""
        slots = self.world._slot_list("allgather")
        slots[self.rank] = obj
        self.barrier()
        out = list(slots)
        # Second barrier before recycling the slot list for the next round.
        if self.world._barrier.wait() == 0:
            self.world._advance("allgather")
        self.world._barrier.wait()
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Root's object is returned on every rank."""
        self._check_root(root)
        slots = self.world._slot_list("bcast")
        if self.rank == root:
            slots[root] = obj
        self.barrier()
        out = slots[root]
        if self.world._barrier.wait() == 0:
            self.world._advance("bcast")
        self.world._barrier.wait()
        return out

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Root receives the list of contributions; others receive None."""
        self._check_root(root)
        slots = self.world._slot_list("gather")
        slots[self.rank] = obj
        self.barrier()
        out = list(slots) if self.rank == root else None
        if self.world._barrier.wait() == 0:
            self.world._advance("gather")
        self.world._barrier.wait()
        return out

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Enqueue ``obj`` for ``dest`` (non-blocking, unbounded queue)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"bad destination rank {dest}")
        self.world._queue_for(dest, tag).put((self.rank, obj))

    def recv(self, source: int | None = None, tag: int = 0, timeout: float = 30.0) -> Any:
        """Dequeue the next message with ``tag``; optionally filter by source.

        Messages from other sources arriving first are re-queued, preserving
        per-source FIFO order for typical two-party exchanges.
        """
        q = self.world._queue_for(self.rank, tag)
        stash = []
        try:
            while True:
                src, obj = q.get(timeout=timeout)
                if source is None or src == source:
                    return obj
                stash.append((src, obj))
        except queue.Empty:
            raise CommunicatorError(
                f"recv timeout on rank {self.rank} (tag={tag}, source={source})"
            ) from None
        finally:
            for item in stash:
                q.put(item)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(f"bad root rank {root}")
