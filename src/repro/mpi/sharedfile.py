"""Positioned I/O on one shared file (MPI-IO stand-in).

Thread ranks write to a single file with explicit offsets via ``os.pwrite``
/ ``os.pread`` — the same independent-write primitive MPI-IO offers and the
paper's pipeline relies on.  ``pwrite`` at distinct offsets needs no
locking; metadata operations (resize, size) take a lock.
"""

from __future__ import annotations

import os
import threading

from repro.errors import InvalidStateError


class SharedFile:
    """One shared file opened for positioned reads/writes."""

    def __init__(self, path: str, mode: str = "w+") -> None:
        if mode not in ("w+", "r+", "r"):
            raise ValueError(f"unsupported mode {mode!r}")
        flags = {
            "w+": os.O_RDWR | os.O_CREAT | os.O_TRUNC,
            "r+": os.O_RDWR,
            "r": os.O_RDONLY,
        }[mode]
        self.path = path
        self._fd: int | None = os.open(path, flags, 0o644)
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the descriptor (idempotent)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "SharedFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._fd is None

    def _require_fd(self) -> int:
        fd = self._fd
        if fd is None:
            raise InvalidStateError(f"file {self.path} is closed")
        return fd

    # -- positioned I/O -----------------------------------------------------

    def pwrite(self, data: bytes, offset: int) -> int:
        """Write ``data`` at ``offset``; returns bytes written.

        Thread-safe for non-overlapping regions without locking (POSIX
        pwrite semantics).
        """
        if offset < 0:
            raise ValueError("negative offset")
        fd = self._require_fd()
        view = memoryview(data)
        written = 0
        while written < len(view):
            written += os.pwrite(fd, view[written:], offset + written)
        return written

    def pread(self, nbytes: int, offset: int) -> bytes:
        """Read up to ``nbytes`` at ``offset`` (short only at EOF)."""
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or size")
        fd = self._require_fd()
        chunks = []
        got = 0
        while got < nbytes:
            chunk = os.pread(fd, nbytes - got, offset + got)
            if not chunk:
                break
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    # -- metadata -----------------------------------------------------------

    def size(self) -> int:
        """Current file size in bytes."""
        fd = self._require_fd()
        return os.fstat(fd).st_size

    def truncate(self, nbytes: int) -> None:
        """Set the file length (extends with zeros or cuts)."""
        if nbytes < 0:
            raise ValueError("negative size")
        with self._lock:
            os.ftruncate(self._require_fd(), nbytes)

    def fsync(self) -> None:
        """Flush to stable storage."""
        os.fsync(self._require_fd())
