"""SPMD launcher: run one function on N thread ranks.

``run_spmd(nranks, fn, *args)`` starts ``nranks`` threads, each calling
``fn(comm, *args)`` with its own :class:`~repro.mpi.comm.RankComm`.  Return
values are collected in rank order; the first rank exception (by rank
number) is re-raised in the caller after all threads stop, so failures are
loud and deterministic.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import RuntimeLayerError
from repro.mpi.comm import RankComm, ThreadCommWorld


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 120.0,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` thread ranks.

    Returns the per-rank return values in rank order.  If any rank raises,
    the lowest-rank exception propagates (after joining all threads, so no
    thread leaks).  ``timeout`` bounds the join per thread; a hang raises
    :class:`RuntimeLayerError`.
    """
    if nranks <= 0:
        raise RuntimeLayerError("nranks must be positive")
    world = ThreadCommWorld(nranks)
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int, comm: RankComm) -> None:
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - rethrown in caller
            errors[rank] = exc
            # Break any barrier the other ranks may be stuck in.
            world._barrier.abort()

    threads = [
        threading.Thread(
            target=runner, args=(rank, world.rank_comm(rank)), name=f"rank-{rank}", daemon=True
        )
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise RuntimeLayerError(f"SPMD thread {t.name} did not finish (deadlock?)")
    for rank, err in enumerate(errors):
        if err is not None and not isinstance(err, threading.BrokenBarrierError):
            raise err
    # If only broken-barrier errors remain, surface the first of those.
    for err in errors:
        if err is not None:
            raise RuntimeLayerError("SPMD run aborted via broken barrier") from err
    return results
