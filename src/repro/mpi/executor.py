"""SPMD launcher: run one function on N thread ranks.

``run_spmd(nranks, fn, *args)`` starts ``nranks`` threads, each calling
``fn(comm, *args)`` with its own :class:`~repro.mpi.comm.RankComm`.  Return
values are collected in rank order; the first rank exception (by rank
number) is re-raised in the caller after all threads stop, so failures are
loud and deterministic.

The optional ``submit`` hook lets a pool-backed executor
(:class:`repro.exec.ThreadPoolExecutor`) reuse long-lived workers instead
of spawning a thread per rank per call — the streaming-session hot path
runs one SPMD step per time-step, so spawn overhead is recurring.  The
hook must provide genuine per-rank concurrency (one in-flight worker per
rank), or barrier-synchronized rank functions would deadlock.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Callable

from repro.errors import RuntimeLayerError
from repro.mpi.comm import RankComm, ThreadCommWorld


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 120.0,
    submit: Callable[..., Any] | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` thread ranks.

    Returns the per-rank return values in rank order.  If any rank raises,
    the lowest-rank exception propagates (after joining all threads, so no
    thread leaks).  ``timeout`` bounds the join per thread; a hang raises
    :class:`RuntimeLayerError`.  ``submit(runner, rank, comm)`` — when
    given — schedules each rank body on an existing pool and must return a
    future with ``result(timeout)``.
    """
    if nranks <= 0:
        raise RuntimeLayerError("nranks must be positive")
    world = ThreadCommWorld(nranks)
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int, comm: RankComm) -> None:
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - rethrown in caller
            errors[rank] = exc
            # Break any barrier the other ranks may be stuck in.
            world._barrier.abort()

    if submit is None:
        threads = [
            threading.Thread(
                target=runner, args=(rank, world.rank_comm(rank)), name=f"rank-{rank}", daemon=True
            )
            for rank in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout)
            if t.is_alive():
                # Unblock any rank stuck in a collective so the (possibly
                # pooled, non-daemon) threads can exit instead of leaking.
                world._barrier.abort()
                raise RuntimeLayerError(f"SPMD thread {t.name} did not finish (deadlock?)")
    else:
        futures = [submit(runner, rank, world.rank_comm(rank)) for rank in range(nranks)]
        for rank, fut in enumerate(futures):
            try:
                fut.result(timeout)
            # concurrent.futures.TimeoutError is the builtin only on 3.11+.
            except (TimeoutError, concurrent.futures.TimeoutError):
                world._barrier.abort()
                raise RuntimeLayerError(
                    f"SPMD rank {rank} did not finish (deadlock?)"
                ) from None
    for rank, err in enumerate(errors):
        if err is not None and not isinstance(err, threading.BrokenBarrierError):
            raise err
    # If only broken-barrier errors remain, surface the first of those.
    for err in errors:
        if err is not None:
            raise RuntimeLayerError("SPMD run aborted via broken barrier") from err
    return results
