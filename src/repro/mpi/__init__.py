"""Thread-backed SPMD runtime (MPI stand-in).

mpi4py is unavailable offline, so functional parallel execution runs N
ranks as Python threads over a shared-memory communicator implementing the
collectives the paper's pipeline needs (barrier, allgather, bcast, gather,
point-to-point).  Coordination logic — offset agreement, overflow
resolution, shared-file layout — is exercised for real; *timing* is not
meaningful under the GIL, which is why performance experiments live in
:mod:`repro.sim` instead.
"""

from repro.mpi.comm import RankComm, ThreadCommWorld
from repro.mpi.executor import run_spmd
from repro.mpi.sharedfile import SharedFile

__all__ = ["RankComm", "ThreadCommWorld", "run_spmd", "SharedFile"]
