"""``repro.serve`` — the multi-tenant ingest daemon.

The facade made the predictive engine callable; this package makes it
*servable*: one :class:`~repro.serve.daemon.ReproServer` accepts
concurrent write/append_step streams from many clients over a local
socket, stages them into shared facade files, and coalesces compatible
requests — the facade's ``(group, partitioning, config)`` batching is
the compatibility key — into single collective RealDriver runs, under
backpressure from a bounded per-tenant fair queue.

Server::

    repro serve --port 7707          # or ReproServer(port=7707).start()

Clients::

    with repro.open("out.phd5", "w", server="127.0.0.1:7707") as f:
        ds = f.create_dataset("density", shape, error_bound=1e-3)
        ds[my_block_region] = my_block       # staged, coalesced, landed
"""

from repro.serve.client import RemoteDataset, RemoteFile, ServeClient, open_remote
from repro.serve.daemon import ReproServer
from repro.serve.protocol import (
    ConnectionClosedError,
    ProtocolError,
    QueueFullError,
    RemoteOpError,
    ServeError,
)
from repro.serve.queue import FairWorkQueue

__all__ = [
    "ReproServer",
    "ServeClient",
    "RemoteFile",
    "RemoteDataset",
    "open_remote",
    "FairWorkQueue",
    "ServeError",
    "ProtocolError",
    "ConnectionClosedError",
    "QueueFullError",
    "RemoteOpError",
]
