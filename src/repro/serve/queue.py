"""Bounded multi-tenant work queue with round-robin fairness.

The daemon's backpressure lives here.  Every tenant (one per client
``hello``) gets its own FIFO with a hard depth cap; the single writer
thread drains tenants round-robin, one item per turn, so a flooding
tenant can delay its *own* work but never starve anyone else's.  When a
tenant's FIFO is full — or the whole queue hits its aggregate cap — the
enqueue is rejected immediately with :class:`QueueFullError`; the server
turns that into a retryable wire response and the client backs off.

Control items (``flush`` / ``close`` / connection release) bypass the
depth caps (``force=True``): they are rare, small, and refusing them
would wedge the drain path that empties the queue.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.serve.protocol import QueueFullError, ServeError


@dataclass(frozen=True)
class QueueStats:
    """Point-in-time snapshot of queue behaviour."""

    depth: int
    tenants: int
    enqueued: int
    rejected: int
    per_tenant_depth: dict

    def to_json(self) -> dict:
        return {
            "depth": self.depth,
            "tenants": self.tenants,
            "enqueued": self.enqueued,
            "rejected": self.rejected,
            "per_tenant_depth": dict(self.per_tenant_depth),
        }


class FairWorkQueue:
    """Per-tenant bounded FIFOs drained round-robin by one consumer."""

    def __init__(self, tenant_depth: int = 64, total_depth: int = 1024) -> None:
        if tenant_depth <= 0 or total_depth <= 0:
            raise ServeError("queue depths must be positive")
        self.tenant_depth = int(tenant_depth)
        self.total_depth = int(total_depth)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._rr: "deque[str]" = deque()  # round-robin tenant rotation
        self._depth = 0
        self._enqueued = 0
        self._rejected = 0
        self._closed = False

    def put(self, tenant: str, item, *, force: bool = False) -> None:
        """Enqueue ``item`` for ``tenant``; rejects at the caps unless forced."""
        with self._lock:
            if self._closed:
                raise ServeError("queue is closed (server shutting down)")
            q = self._queues.get(tenant)
            if q is None:
                q = self._queues[tenant] = deque()
                self._rr.append(tenant)
            if not force and (
                len(q) >= self.tenant_depth or self._depth >= self.total_depth
            ):
                self._rejected += 1
                scope = "tenant" if len(q) >= self.tenant_depth else "server"
                raise QueueFullError(
                    f"{scope} ingest queue is full "
                    f"(tenant {tenant!r}: {len(q)}/{self.tenant_depth}, "
                    f"total: {self._depth}/{self.total_depth}); retry later"
                )
            q.append(item)
            self._depth += 1
            self._enqueued += 1
            self._ready.notify()

    def requeue(self, tenant: str, item) -> None:
        """Push a deferred control item back to its tenant's tail (forced)."""
        self.put(tenant, item, force=True)

    def get(self, timeout: "float | None" = None):
        """Next ``(tenant, item)`` in round-robin order, or None on timeout
        (and immediately None once closed *and* drained)."""
        with self._lock:
            while True:
                for _ in range(len(self._rr)):
                    tenant = self._rr[0]
                    self._rr.rotate(-1)
                    q = self._queues.get(tenant)
                    if q:
                        self._depth -= 1
                        return tenant, q.popleft()
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None

    def close(self) -> None:
        """Refuse new work; :meth:`get` drains what remains, then None."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return self._depth

    def stats(self) -> QueueStats:
        with self._lock:
            return QueueStats(
                depth=self._depth,
                tenants=len(self._queues),
                enqueued=self._enqueued,
                rejected=self._rejected,
                per_tenant_depth={t: len(q) for t, q in self._queues.items() if q},
            )
