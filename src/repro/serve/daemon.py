"""The ``repro.serve`` multi-tenant ingest daemon.

One process serves many writer clients: each connection gets a reader
thread that parses frames and enqueues work; a **single writer thread**
drains the bounded :class:`~repro.serve.queue.FairWorkQueue` round-robin
across tenants and applies every operation to the shared
:class:`~repro.serve.coalescer.Coalescer` — so all file mutation is
serialized (no locking inside the facade) while the expensive work, the
coalesced collective RealDriver runs, fans out over the configured
executor backend.

Request classes:

* **ingest** (``write`` / ``step``) — acknowledged at *enqueue*; full
  queues reject immediately with a retryable error (backpressure).
  Execution failures are accounted per session and surfaced in the next
  ``flush`` / ``close`` response.
* **control** (``open`` / ``create`` / ``flush`` / ``close``) — enqueued
  in the same per-tenant FIFO (so they order after that tenant's staged
  writes) but answered only after execution.  ``flush``/``close`` are
  *quiescent*: the writer defers them while the session still has
  pending ingest from any tenant, so a commit can never split another
  client's in-flight batch.
* **admin** (``ping`` / ``stats`` / ``shutdown``) — ``ping``/``stats``
  answer inline from the reader thread; ``shutdown`` drains the queue,
  flushes what is complete, closes every file, then answers.

A client disconnecting mid-stream (torn frame or EOF) releases its file
handles with incomplete staged data dropped; other clients are
untouched.
"""

from __future__ import annotations

import socket
import threading

import numpy as np

from repro.core.config import PipelineConfig
from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import (
    ConnectionClosedError,
    ProtocolError,
    QueueFullError,
    ServeError,
)
from repro.serve.queue import FairWorkQueue

#: Ops acknowledged at enqueue (the backpressured ingest class).
INGEST_OPS = frozenset({"write", "step"})

#: Ops answered after execution on the writer thread.
CONTROL_OPS = frozenset({"open", "create", "lookup", "flush", "close"})

#: Control ops that defer until their session's ingest queue is quiet.
QUIESCENT_OPS = frozenset({"flush", "close"})


class _Op:
    """One queued unit of work."""

    __slots__ = ("kind", "header", "payload", "conn", "done", "result")

    def __init__(self, kind: str, header: dict, payload: bytes, conn) -> None:
        self.kind = kind
        self.header = header
        self.payload = payload
        self.conn = conn
        self.done = threading.Event() if kind in CONTROL_OPS else None
        self.result: dict | None = None


class _Connection:
    """Per-client state owned by that client's reader thread."""

    def __init__(self, sock: socket.socket, tenant: str) -> None:
        self.sock = sock
        self.tenant = tenant
        self.lock = threading.Lock()  # serializes response frames
        self.fids: list[str] = []

    def send(self, header: dict, payload=None) -> None:
        with self.lock:
            protocol.send_frame(self.sock, header, payload)


class ReproServer:
    """A local-socket ingest daemon in front of the predictive engine."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: "str | None" = None,
        *,
        config: "PipelineConfig | None" = None,
        nranks: int = 4,
        strategy: str = "reorder",
        machine: str = "bebop",
        tenant_depth: int = 64,
        total_depth: int = 1024,
    ) -> None:
        self._unix_path = unix_path
        self._host = host
        self._port = port
        self.queue = FairWorkQueue(tenant_depth=tenant_depth, total_depth=total_depth)
        self.coalescer = Coalescer(
            config=config, nranks=nranks, strategy=strategy, machine=machine
        )
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._writer: threading.Thread | None = None
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._lock = threading.Lock()
        self._conn_count = 0
        self._active_conns = 0
        self._ops_executed = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound address clients connect to (host:port or unix path)."""
        if self._unix_path is not None:
            return self._unix_path
        if self._sock is None:
            raise ServeError("server is not started")
        host, port = self._sock.getsockname()[:2]
        return f"{host}:{port}"

    def start(self) -> "ReproServer":
        """Bind, spawn the writer and acceptor threads, return self."""
        if self._sock is not None:
            raise ServeError("server already started")
        if self._unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(self._unix_path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self._host, self._port))
        sock.listen(64)
        sock.settimeout(0.2)  # so the acceptor notices _stopping promptly
        self._sock = sock
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-writer", daemon=True
        )
        self._writer.start()
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Clean shutdown: stop accepting, drain the queue, flush complete
        datasets, drop incomplete ones, close every file (idempotent)."""
        if self._stopping.is_set():
            self._drained.wait(timeout)
            return
        self._stopping.set()
        self.queue.close()
        if self._writer is not None:
            self._writer.join(timeout)
        self._drained.wait(timeout)
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (for the console ``repro serve``)."""
        self._drained.wait()

    def stats(self) -> dict:
        with self._lock:
            out = {
                "connections": self._active_conns,
                "connections_total": self._conn_count,
                "ops_executed": self._ops_executed,
            }
        out["queue"] = self.queue.stats().to_json()
        out["files"] = self.coalescer.stats()
        return out

    # -- acceptor / reader side ----------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn_sock, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                self._conn_count += 1
                self._active_conns += 1
                tenant = f"conn{self._conn_count}"
            conn_sock.settimeout(None)
            thread = threading.Thread(
                target=self._client_loop,
                args=(_Connection(conn_sock, tenant),),
                name=f"repro-serve-{tenant}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _client_loop(self, conn: _Connection) -> None:
        try:
            while True:
                header, payload = protocol.recv_frame(conn.sock)
                if not self._dispatch(conn, header, payload):
                    break
        except (ConnectionClosedError, ProtocolError, OSError):
            # Torn frame or vanished peer: drop the connection, keep the
            # daemon serving.  The release below cleans up its handles.
            pass
        finally:
            if conn.fids and not self._stopping.is_set():
                release = _Op("release", {"fids": list(conn.fids)}, b"", conn)
                try:
                    self.queue.put(conn.tenant, release, force=True)
                except ServeError:
                    pass  # shutdown drain closes everything anyway
            try:
                conn.sock.close()
            except OSError:
                pass
            with self._lock:
                self._active_conns -= 1

    def _dispatch(self, conn: _Connection, header: dict, payload: bytes) -> bool:
        """Handle one request frame; False ends the connection loop."""
        op = header.get("op")
        rid = header.get("rid")
        if op == "hello":
            if header.get("tenant"):
                conn.tenant = str(header["tenant"])
            conn.send({
                "ok": True, "rid": rid,
                "protocol": protocol.PROTOCOL_VERSION, "tenant": conn.tenant,
            })
            return True
        if op == "ping":
            conn.send({"ok": True, "rid": rid})
            return True
        if op == "stats":
            conn.send({"ok": True, "rid": rid, "stats": self.stats()})
            return True
        if op == "shutdown":
            self.stop()
            conn.send({"ok": True, "rid": rid, "draining": False})
            return False
        if op in INGEST_OPS:
            return self._enqueue_ingest(conn, op, header, payload, rid)
        if op in CONTROL_OPS:
            return self._enqueue_control(conn, op, header, payload, rid)
        conn.send(protocol.error_response("ProtocolError", f"unknown op {op!r}"))
        return True

    def _enqueue_ingest(self, conn, op, header, payload, rid) -> bool:
        if self._stopping.is_set():
            conn.send(protocol.error_response(
                "ServeError", "server is shutting down", retry=False
            ) | {"rid": rid})
            return True
        item = _Op(op, header, payload, conn)
        try:
            self.queue.put(conn.tenant, item)
        except QueueFullError as exc:
            conn.send(protocol.error_response(
                "QueueFullError", str(exc), retry=True
            ) | {"rid": rid})
            return True
        except ServeError as exc:
            conn.send(protocol.error_response(
                type(exc).__name__, str(exc)
            ) | {"rid": rid})
            return True
        fid = header.get("fid")
        if fid is not None:
            self._adjust_pending(fid, +1)
        conn.send({"ok": True, "rid": rid, "queued": True})
        return True

    def _enqueue_control(self, conn, op, header, payload, rid) -> bool:
        item = _Op(op, header, payload, conn)
        try:
            self.queue.put(conn.tenant, item, force=True)
        except ServeError as exc:
            conn.send(protocol.error_response(
                type(exc).__name__, str(exc)
            ) | {"rid": rid})
            return True
        item.done.wait()
        conn.send(dict(item.result) | {"rid": rid})
        return True

    def _adjust_pending(self, fid: str, delta: int) -> None:
        """Track per-session in-flight ingest (commit quiescence)."""
        try:
            session = self.coalescer.session(fid)
        except ReproError:
            return  # unknown fid: execution will report it
        with self._lock:
            session.pending_ingest += delta

    # -- writer side ---------------------------------------------------------

    def _writer_loop(self) -> None:
        try:
            while True:
                got = self.queue.get(timeout=0.5)
                if got is None:
                    if self._stopping.is_set():
                        break
                    continue
                tenant, item = got
                if item.kind in QUIESCENT_OPS and self._must_defer(item):
                    self.queue.requeue(tenant, item)
                    continue
                self._execute(item)
        finally:
            errors = self.coalescer.close_all()
            if errors:  # pragma: no cover - depends on failing teardown
                for line in errors:
                    print(f"repro.serve shutdown: {line}")
            self._drained.set()

    def _must_defer(self, item: _Op) -> bool:
        """True when a flush/close must wait for in-queue ingest to land."""
        fid = item.header.get("fid")
        if fid is None:
            return False
        try:
            session = self.coalescer.session(fid)
        except ReproError:
            return False
        with self._lock:
            return session.pending_ingest > 0

    def _execute(self, item: _Op) -> None:
        with self._lock:
            self._ops_executed += 1
        try:
            result = self._apply(item)
        except ReproError as exc:
            result = protocol.error_response(type(exc).__name__, str(exc))
            if item.done is None:  # async ingest: account for the commit
                self._record_async_error(item, exc)
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            result = protocol.error_response(type(exc).__name__, str(exc))
            if item.done is None:
                self._record_async_error(item, exc)
        if item.done is not None:
            item.result = result
            item.done.set()

    def _record_async_error(self, item: _Op, exc: Exception) -> None:
        fid = item.header.get("fid")
        if fid is None:
            return
        try:
            self.coalescer.session(fid).record_error(item.kind, exc)
        except ReproError:
            pass

    def _apply(self, item: _Op) -> dict:
        header = item.header
        fid = header.get("fid")
        if item.kind in INGEST_OPS and fid is not None:
            self._adjust_pending(fid, -1)
        if item.kind == "open":
            new_fid = self.coalescer.open(
                header["path"],
                header.get("mode", "w"),
                strategy=header.get("strategy"),
                nranks=header.get("nranks"),
                machine=header.get("machine"),
                config=header.get("config"),
            )
            item.conn.fids.append(new_fid)
            return {"ok": True, "fid": new_fid}
        if item.kind == "create":
            self.coalescer.create_dataset(
                fid,
                header["name"],
                tuple(header["shape"]),
                header["dtype"],
                time_axis=bool(header.get("time_axis", False)),
                **header.get("settings", {}),
            )
            return {"ok": True}
        if item.kind == "lookup":
            return {"ok": True} | self.coalescer.lookup(fid, header["name"])
        if item.kind == "write":
            block = protocol.unpack_array(header, item.payload)
            self.coalescer.stage_block(fid, header["name"], header["regions"], block)
            return {"ok": True}
        if item.kind == "step":
            fields: dict = {}
            offset = 0
            view = memoryview(item.payload)
            for spec in header["fields"]:
                n = int(np.prod(spec["shape"], dtype=np.int64)) * np.dtype(spec["dtype"]).itemsize
                fields[spec["name"]] = protocol.unpack_array(
                    spec, view[offset:offset + n]
                )
                offset += n
            self.coalescer.append_step(fid, fields)
            return {"ok": True}
        if item.kind == "flush":
            return {"ok": True} | self.coalescer.flush(fid)
        if item.kind == "close":
            result = self.coalescer.close(
                fid, drop_incomplete=bool(header.get("drop_incomplete", False))
            )
            if fid in item.conn.fids:
                item.conn.fids.remove(fid)
            return {"ok": True} | result
        if item.kind == "release":
            self.coalescer.release_all(header["fids"])
            return {"ok": True}
        raise ServeError(f"unhandled op kind {item.kind!r}")
