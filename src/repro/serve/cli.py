"""``python -m repro.serve`` / ``repro serve`` — run the ingest daemon.

Two modes:

* **daemon** (default): bind a local socket, print the address, serve
  until SIGINT/SIGTERM, then drain cleanly (flush complete datasets,
  drop incomplete ones, close every file).
* **smoke** (``--smoke``): the CI gate.  Starts an in-process daemon,
  drives N concurrent writer clients into one shared file (each client
  writes its own error-bounded dataset over its own connection), commits
  one coalescing flush, shuts the daemon down cleanly, then *certifies*
  the served file — every field read back within its declared bound —
  and exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import signal
import threading

import numpy as np

from repro.core.config import PipelineConfig
from repro.serve.daemon import ReproServer


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Multi-tenant ingest daemon for the predictive engine.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7707,
                        help="TCP port (0 picks an ephemeral port; default 7707)")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="serve on a unix socket path instead of TCP")
    parser.add_argument("--executor", default="thread",
                        help="fan-out backend for coalesced collective runs "
                             "(default: thread — the daemon's parallelism)")
    parser.add_argument("--nranks", type=int, default=4,
                        help="default SPMD width for facade-partitioned writes")
    parser.add_argument("--strategy", default="reorder",
                        help="default write strategy for served files")
    parser.add_argument("--tenant-depth", type=int, default=64,
                        help="per-tenant ingest queue cap (backpressure knob)")
    parser.add_argument("--total-depth", type=int, default=1024,
                        help="aggregate ingest queue cap (backpressure knob)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: serve, drive concurrent writers, "
                             "verify the file, shut down; exit non-zero on failure")
    parser.add_argument("--smoke-clients", type=int, default=4,
                        help="concurrent writer clients in --smoke (default 4)")
    return parser.parse_args(argv)


def _build_server(args) -> ReproServer:
    return ReproServer(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        config=PipelineConfig(executor=args.executor),
        nranks=args.nranks,
        strategy=args.strategy,
        tenant_depth=args.tenant_depth,
        total_depth=args.total_depth,
    )


def run_smoke(args) -> int:
    """Start a daemon, drive concurrent writers, verify, shut down."""
    import os
    import tempfile

    from repro import api
    from repro.serve.client import ServeClient, open_remote
    from repro.verify.certify import certify

    n_clients = max(2, args.smoke_clients)
    shape, bound = (24, 24, 24), 1e-3
    rng = np.random.default_rng(7)
    payloads = {
        f"fields/f{i:02d}": (rng.normal(0.0, 1.0, shape) * 0.05).astype(np.float32)
        for i in range(n_clients)
    }
    args.port = 0 if args.unix is None else args.port  # never collide in CI
    server = _build_server(args)
    server.start()
    print(f"smoke: daemon on {server.address}, {n_clients} concurrent writers")
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        path = os.path.join(tmp, "smoke.phd5")
        try:
            control = open_remote(server.address, path, "w", tenant="control")
            for name in payloads:
                control.create_dataset(name, shape, np.float32, error_bound=bound)

            def write_one(name: str, arr: np.ndarray) -> None:
                f = open_remote(server.address, path, "w", tenant=name)
                f[name][...] = arr
                f.close()

            threads = [
                threading.Thread(target=write_one, args=(n, a), daemon=True)
                for n, a in payloads.items()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            landed = control.flush()
            print(f"smoke: coalesced flush landed {len(landed)} datasets")
            if len(landed) != n_clients:
                failures.append(f"expected {n_clients} datasets, landed {landed}")
            admin = ServeClient(server.address)
            stats = admin.stats()
            print(f"smoke: server stats {stats}")
            control.close()
            admin.close()
        finally:
            server.stop()
        if not failures:
            report = certify(
                path, {k.split("/")[-1]: v for k, v in payloads.items()}
            )
            for cert in report.certificates:
                print(
                    f"smoke: {cert.field} max_error={cert.max_error:.3e} "
                    f"bound={cert.bound:.3e} passed={cert.passed}"
                )
            if not report.passed:
                failures.append("certification failed for the served file")
            # Read back through the plain local facade too: a served file
            # is an ordinary PHD5 container.
            with api.open(path, "r") as f:
                for name, ref in payloads.items():
                    got = f[name][...]
                    if np.max(np.abs(got.astype(np.float64) - ref)) > bound * 1.0001:
                        failures.append(f"{name}: local read-back breached bound")
    if failures:
        print("SMOKE FAILED:")
        for line in failures:
            print(" ", line)
        return 1
    print("smoke passed: concurrent served writes verified, clean shutdown")
    return 0


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    server = _build_server(args)
    server.start()
    print(f"repro serve: listening on {server.address} "
          f"(tenant depth {args.tenant_depth}, total {args.total_depth}, "
          f"executor {args.executor!r}); Ctrl-C drains and exits")

    def _stop(signum, frame):  # pragma: no cover - signal path
        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    server.serve_forever()
    print("repro serve: drained and closed")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
