"""Client side of the ingest daemon: ``repro.open(path, server=...)``.

:class:`RemoteFile` mirrors the write surface of the local facade —
``create_dataset``, ``ds[region] = arr``, ``append_step``, ``flush``,
``close`` — but every call becomes a wire request to a running
``repro serve`` daemon, where it is staged into the shared file and
coalesced with other clients' compatible requests into single collective
RealDriver runs.

Backpressure is cooperative: staged writes acknowledged with a retryable
``QueueFullError`` are retried with exponential backoff up to
``retry_seconds``; a persistent full queue then surfaces as
:class:`~repro.serve.protocol.QueueFullError` to the caller.  Because
ingest acks mean *queued*, not *landed*, execution errors surface on the
next :meth:`RemoteFile.flush` / :meth:`RemoteFile.close` — both raise
:class:`~repro.serve.protocol.RemoteOpError` listing everything that
failed since the previous commit point (per-batch error accounting).

Reads are deliberately absent: a served file is a normal PHD5 container;
read it with a plain local ``repro.open(path)`` once it has flushed.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time

import numpy as np

from repro.api.dataset import _selection
from repro.api.settings import DatasetSettings
from repro.core.config import PipelineConfig
from repro.errors import ConfigError, ReadOnlyError, ShapeMismatchError
from repro.serve import protocol
from repro.serve.coalescer import DATASET_FIELDS, config_to_wire
from repro.serve.protocol import QueueFullError, ServeError


def _connect(address: str, timeout: "float | None") -> socket.socket:
    """Dial ``host:port`` or a unix socket path."""
    if ":" in address and not address.startswith("/"):
        host, _, port = address.rpartition(":")
        sock = socket.create_connection((host, int(port)), timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    sock.settimeout(None)
    return sock


class ServeClient:
    """One connection to a daemon: framing, retries, request/response."""

    def __init__(
        self,
        address: str,
        *,
        tenant: "str | None" = None,
        timeout: "float | None" = 30.0,
        retry_seconds: float = 30.0,
    ) -> None:
        self.address = address
        self.retry_seconds = float(retry_seconds)
        self._sock = _connect(address, timeout)
        self._lock = threading.Lock()
        self._rid = itertools.count()
        hello = self.request({"op": "hello", "tenant": tenant})
        self.tenant: str = hello["tenant"]
        if hello.get("protocol") != protocol.PROTOCOL_VERSION:
            self.close()
            raise ServeError(
                f"server speaks protocol {hello.get('protocol')}, "
                f"client {protocol.PROTOCOL_VERSION}"
            )

    def request(self, header: dict, payload=None, *, retry: bool = False) -> dict:
        """One request/response round trip; retryable rejections back off."""
        deadline = time.monotonic() + self.retry_seconds
        delay = 0.001
        while True:
            with self._lock:
                header = dict(header, rid=next(self._rid))
                protocol.send_frame(self._sock, header, payload)
                response, _ = protocol.recv_frame(self._sock)
            if response.get("ok"):
                return response
            if retry and response.get("retry") and time.monotonic() < deadline:
                time.sleep(delay)
                delay = min(delay * 2.0, 0.1)
                continue
            return protocol.raise_for_response(response)

    def ping(self) -> None:
        self.request({"op": "ping"})

    def stats(self) -> dict:
        """Server-side queue/files/connection counters."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the daemon to drain, close every file, and exit."""
        self.request({"op": "shutdown"})
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_remote(
    address: str,
    path: str,
    mode: str = "w",
    *,
    config: "PipelineConfig | None" = None,
    nranks: "int | None" = None,
    strategy: "str | None" = None,
    machine: "str | None" = None,
    tenant: "str | None" = None,
    client: "ServeClient | None" = None,
) -> "RemoteFile":
    """Open ``path`` for writing through the daemon at ``address``.

    This is what ``repro.open(path, mode, server=address)`` calls; the
    keyword surface matches the local facade so switching a writer to the
    daemon is a one-argument change.
    """
    if mode not in ("w", "r+"):
        raise ReadOnlyError(
            f"server= routes writes; open mode {mode!r} locally instead "
            "(served files are ordinary PHD5 containers once flushed)"
        )
    owns = client is None
    if client is None:
        client = ServeClient(address, tenant=tenant)
    response = client.request({
        "op": "open",
        "path": path,
        "mode": mode,
        "strategy": strategy,
        "nranks": nranks,
        "machine": machine,
        "config": config_to_wire(config),
    })
    return RemoteFile(client, response["fid"], path, mode, owns_client=owns)


class RemoteDataset:
    """A write handle on one dataset of a served file."""

    def __init__(
        self, file: "RemoteFile", name: str, shape, dtype, time_axis: bool
    ) -> None:
        self._file = file
        self.name = name
        self._base_shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.time_axis = bool(time_axis)

    @property
    def shape(self) -> tuple:
        return self._base_shape

    def __setitem__(self, key, value) -> None:
        if self.time_axis:
            raise ServeError(
                f"{self.name}: served time-axis datasets stream whole steps; "
                "use RemoteFile.append_step"
            )
        regions, value_shape = _selection(key, self._base_shape)
        value = np.asarray(value)
        if tuple(value.shape) != value_shape:
            raise ShapeMismatchError(
                f"{self.name}: assigned array shape {tuple(value.shape)} does "
                f"not match the selected region shape {value_shape}"
            )
        block = np.ascontiguousarray(value, dtype=self.dtype).reshape(
            tuple(b - a for a, b in regions)
        )
        meta, payload = protocol.pack_array(block)
        self._file._client.request(
            {
                "op": "write",
                "fid": self._file._fid,
                "name": self.name,
                "regions": regions,
            }
            | meta,
            payload,
            retry=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "time-axis " if self.time_axis else ""
        return (
            f"<repro.serve.RemoteDataset {self.name!r} {kind}"
            f"shape={self._base_shape} dtype={self.dtype}>"
        )


class RemoteFile:
    """A served file handle: the facade's write surface over the wire."""

    def __init__(
        self, client: ServeClient, fid: str, path: str, mode: str,
        owns_client: bool = True,
    ) -> None:
        self._client = client
        self._fid = fid
        self.path = path
        self.mode = mode
        self._owns_client = owns_client
        self._datasets: dict[str, RemoteDataset] = {}
        self._closed = False

    def create_dataset(
        self,
        name: str,
        shape: "tuple[int, ...] | None" = None,
        dtype=None,
        data=None,
        *,
        maxshape: "tuple | None" = None,
        **settings,
    ) -> RemoteDataset:
        """Create a dataset on the served file (same keywords as the local
        facade: ``error_bound``, ``strategy``, ``nranks``, ...)."""
        unknown = sorted(set(settings) - set(DATASET_FIELDS))
        if unknown:
            raise ConfigError(
                f"unsupported dataset setting(s) {unknown} over the wire; "
                f"supported: {list(DATASET_FIELDS)}"
            )
        if data is not None:
            data = np.asarray(data)
            shape = shape or data.shape
            dtype = dtype or data.dtype
        if shape is None:
            raise ConfigError(f"dataset {name!r}: pass shape=... or data=...")
        shape = tuple(int(s) for s in shape)
        time_axis = False
        if maxshape is not None:
            maxshape = tuple(maxshape)
            if maxshape[0] is not None or any(m is None for m in maxshape[1:]):
                raise ConfigError(
                    f"dataset {name!r}: only maxshape=(None, *shape) is "
                    "supported (the unlimited step axis)"
                )
            rest = tuple(int(m) for m in maxshape[1:])
            if shape not in (rest, (0, *rest)):
                raise ShapeMismatchError(
                    f"dataset {name!r}: shape {shape} does not match "
                    f"maxshape {maxshape}"
                )
            shape = rest
            time_axis = True
        dtype = np.dtype(dtype if dtype is not None else np.float32)
        # Validate eagerly client-side so errors point here, not at flush.
        DatasetSettings(**{k: v for k, v in settings.items()
                           if k in DatasetSettings.__dataclass_fields__})
        self._client.request({
            "op": "create",
            "fid": self._fid,
            "name": name,
            "shape": list(shape),
            "dtype": dtype.str,
            "time_axis": time_axis,
            "settings": {k: v for k, v in settings.items() if v is not None},
        })
        ds = RemoteDataset(self, name, shape, dtype, time_axis)
        self._datasets[name.lstrip("/")] = ds
        if data is not None:
            ds[...] = data
        return ds

    def __getitem__(self, name: str) -> RemoteDataset:
        """A write handle on a dataset of the served file — including one
        another client created on the same shared session."""
        ds = self._datasets.get(name.lstrip("/"))
        if ds is None:
            meta = self._client.request(
                {"op": "lookup", "fid": self._fid, "name": name}
            )
            ds = RemoteDataset(
                self, name, meta["shape"], meta["dtype"], meta["time_axis"]
            )
            self._datasets[name.lstrip("/")] = ds
        return ds

    def append_step(self, fields) -> None:
        """Stream one snapshot of every time-axis dataset as a new step."""
        specs: list[dict] = []
        chunks: list[bytes] = []
        for name in sorted(fields):
            arr = np.ascontiguousarray(np.asarray(fields[name]))
            meta, payload = protocol.pack_array(arr)
            specs.append({"name": name} | meta)
            chunks.append(bytes(payload))
        self._client.request(
            {"op": "step", "fid": self._fid, "fields": specs},
            b"".join(chunks),
            retry=True,
        )

    def flush(self) -> "list[str]":
        """Commit: coalesce and land every complete staged dataset (all
        clients' blocks included).  Returns the dataset paths that landed;
        raises :class:`RemoteOpError` if staged ingest failed since the
        last commit."""
        response = self._client.request({"op": "flush", "fid": self._fid})
        self._raise_batch_errors("flush", response)
        return response.get("landed", [])

    def close(self, drop_incomplete: bool = False) -> None:
        """Release this handle (the last handle closes the file on disk)."""
        if self._closed:
            return
        response = self._client.request({
            "op": "close", "fid": self._fid,
            "drop_incomplete": bool(drop_incomplete),
        })
        self._closed = True
        if self._owns_client:
            self._client.close()
        self._raise_batch_errors("close", response)

    def _raise_batch_errors(self, op: str, response: dict) -> None:
        errors = response.get("errors") or []
        if errors:
            raise protocol.RemoteOpError(
                "BatchIngestError",
                f"{op}: {len(errors)} staged request(s) failed: "
                + "; ".join(errors),
            )

    def __enter__(self) -> "RemoteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else self.mode
        return (
            f"<repro.serve.RemoteFile {self.path!r} via "
            f"{self._client.address!r} ({state})>"
        )
