"""Server-side file sessions: staging, coalescing, and commit.

The daemon does not grow a second write path.  Every open file is one
:class:`repro.api.file.File` behind the scenes, and client requests are
*staged* into it exactly as local facade callers would stage them —
``create_dataset``, ``ds[region] = block``, ``append_step``.  Commit
(an explicit ``flush``, the closing of a file, or the shutdown drain)
then calls the facade's own :meth:`~repro.api.file.File.flush`, whose
``(group, shape, partitioning, strategy, config, executor, nranks)``
batching is the daemon's coalescing rule: blocks from *different
clients* that tile compatible datasets land together as one collective
multi-field RealDriver run, cross-field Algorithm-1 reordering included.

Sessions are shared: two clients opening the same path attach to the
same session (reference-counted); the last release closes the engine
file.  A client that disconnects mid-stream releases its references
with ``drop_incomplete=True`` — staged-but-untiled datasets are
discarded rather than wedging the file open forever.

Everything here runs on the daemon's single writer thread; the only
cross-thread surface is :meth:`stats`, guarded by a lock.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.api.file import File as FacadeFile
from repro.core.config import PipelineConfig
from repro.errors import ReproError
from repro.serve.protocol import RemoteOpError, ServeError

#: PipelineConfig fields clients may set over the wire.
CONFIG_FIELDS = (
    "extra_space_ratio",
    "reorder",
    "sample_fraction",
    "slot_alignment",
    "lossless_estimator",
    "async_workers",
    "warm_start_margin",
    "executor",
    "verify",
)

#: Per-dataset settings clients may set over the wire.
DATASET_FIELDS = (
    "error_bound",
    "bound_mode",
    "strategy",
    "extra_space_ratio",
    "performance_weight",
    "nranks",
)


def config_from_wire(spec: "dict | None") -> "PipelineConfig | None":
    """Rebuild a :class:`PipelineConfig` from its wire dict (None passes
    through, unknown keys are rejected so typos fail loudly)."""
    if spec is None:
        return None
    unknown = sorted(set(spec) - set(CONFIG_FIELDS))
    if unknown:
        raise ServeError(
            f"unsupported config field(s) {unknown} over the wire; "
            f"supported: {list(CONFIG_FIELDS)}"
        )
    return PipelineConfig(**spec)


def config_to_wire(config: "PipelineConfig | None") -> "dict | None":
    """The wire dict for a config (only non-default fields, so the server
    reconstructs exactly what the client resolved)."""
    if config is None:
        return None
    default = PipelineConfig()
    return {
        name: getattr(config, name)
        for name in CONFIG_FIELDS
        if getattr(config, name) != getattr(default, name)
    }


@dataclass
class FileSession:
    """One open facade file, shared by every client that opened its path."""

    path: str
    file: FacadeFile
    refcount: int = 1
    #: ingest ops enqueued for this session but not yet executed; commits
    #: defer until this drains so a flush never splits a client's batch.
    pending_ingest: int = 0
    #: execution errors accumulated since the last flush/close response
    #: (per-batch error accounting: async staged writes are acked at
    #: enqueue, so their failures surface at the next commit point).
    errors: "list[str]" = field(default_factory=list)
    staged_blocks: int = 0
    steps_written: int = 0
    #: fid -> dataset names that handle staged blocks into; a disconnect
    #: release drops *its own* incomplete datasets without touching the
    #: in-progress staging of other clients on the shared session.
    touched: "dict[str, set[str]]" = field(default_factory=dict)

    def record_error(self, op: str, exc: Exception) -> None:
        if len(self.errors) < 100:  # bounded: a runaway client can't OOM us
            self.errors.append(f"{op}: {type(exc).__name__}: {exc}")

    def take_errors(self) -> "list[str]":
        out, self.errors = self.errors, []
        return out


class Coalescer:
    """The daemon's registry of open file sessions (writer-thread only)."""

    def __init__(
        self,
        config: "PipelineConfig | None" = None,
        nranks: int = 4,
        strategy: str = "reorder",
        machine: str = "bebop",
    ) -> None:
        self._default_config = config
        self._default_nranks = nranks
        self._default_strategy = strategy
        self._default_machine = machine
        self._sessions: dict[str, FileSession] = {}  # abspath -> session
        self._fids: dict[str, FileSession] = {}  # fid -> session
        self._next_fid = 0
        self._lock = threading.Lock()  # guards counters read by stats()
        self._datasets_landed = 0
        self._flushes = 0
        self._dropped_incomplete = 0

    # -- session lifecycle ---------------------------------------------------

    def open(
        self,
        path: str,
        mode: str = "w",
        *,
        strategy: "str | None" = None,
        nranks: "int | None" = None,
        machine: "str | None" = None,
        config: "dict | None" = None,
    ) -> str:
        """Open (or attach to) the session for ``path``; returns a fid."""
        if mode not in ("w", "r+"):
            raise ServeError(
                f"the ingest daemon serves writes; open mode {mode!r} "
                "locally with repro.open instead"
            )
        key = os.path.abspath(path)
        session = self._sessions.get(key)
        if session is None:
            file = FacadeFile(
                key,
                mode,
                config=config_from_wire(config) or self._default_config,
                nranks=nranks or self._default_nranks,
                strategy=strategy or self._default_strategy,
                machine=machine or self._default_machine,
            )
            session = self._sessions[key] = FileSession(path=key, file=file)
        else:
            session.refcount += 1
        fid = f"f{self._next_fid}"
        self._next_fid += 1
        self._fids[fid] = session
        return fid

    def session(self, fid: str) -> FileSession:
        session = self._fids.get(fid)
        if session is None:
            raise RemoteOpError("UnknownFile", f"no open file handle {fid!r}")
        return session

    # -- staging (acked at enqueue, errors surface at commit) ----------------

    def create_dataset(
        self,
        fid: str,
        name: str,
        shape: "tuple[int, ...]",
        dtype: str,
        *,
        time_axis: bool = False,
        **settings,
    ) -> None:
        unknown = sorted(set(settings) - set(DATASET_FIELDS))
        if unknown:
            raise ServeError(
                f"unsupported dataset setting(s) {unknown}; "
                f"supported: {list(DATASET_FIELDS)}"
            )
        session = self.session(fid)
        shape = tuple(int(s) for s in shape)
        maxshape = (None, *shape) if time_axis else None
        session.file.create_dataset(
            name, shape, np.dtype(dtype), maxshape=maxshape, **settings
        )

    def lookup(self, fid: str, name: str) -> dict:
        """Resolve a dataset another client created on the shared session
        (shape/dtype/time-axis metadata for a remote write handle)."""
        session = self.session(fid)
        try:
            ds = session.file[name]
        except ReproError as exc:
            raise RemoteOpError("UnknownDataset", f"{name!r}: {exc}") from None
        return {
            "name": name,
            "shape": list(ds._base_shape),
            "dtype": ds._dtype.str,
            "time_axis": bool(ds.time_axis),
        }

    def stage_block(
        self, fid: str, name: str, regions: "list[list[int]]", block: np.ndarray
    ) -> None:
        """Stage one client block: ``ds[region] = block`` on the facade."""
        session = self.session(fid)
        ds = session.file[name]
        key = tuple(slice(int(a), int(b)) for a, b in regions)
        ds[key] = block
        session.staged_blocks += 1
        session.touched.setdefault(fid, set()).add(name.lstrip("/"))

    def append_step(self, fid: str, fields: "dict[str, np.ndarray]") -> None:
        """Stream one timestep through the file's shared session."""
        session = self.session(fid)
        session.file.append_step(fields)
        session.steps_written += 1

    # -- commit points -------------------------------------------------------

    def flush(self, fid: str) -> dict:
        """Coalescing commit: every complete staged dataset lands now.

        Compatible datasets — same group, shape, partitioning, strategy,
        config, executor, nranks, *whichever clients staged them* — flush
        as one collective multi-field RealDriver run (the facade's own
        batching).  Returns what landed plus the accumulated async errors.
        """
        session = self.session(fid)
        before = {
            p for p, ds in session.file._datasets.items() if ds.written
        }
        session.file.flush()
        landed = sorted(
            p
            for p, ds in session.file._datasets.items()
            if ds.written and p not in before
        )
        with self._lock:
            self._flushes += 1
            self._datasets_landed += len(landed)
        return {"landed": landed, "errors": session.take_errors()}

    def close(self, fid: str, drop_incomplete: bool = False) -> dict:
        """Release one handle; the last release flushes and closes the file."""
        session = self._fids.pop(fid, None)
        if session is None:
            raise RemoteOpError("UnknownFile", f"no open file handle {fid!r}")
        session.refcount -= 1
        out = {
            "closed": False,
            "dropped": [],
            "errors": session.take_errors(),
        }
        mine = session.touched.pop(fid, set())
        if session.refcount > 0:
            if drop_incomplete:
                # The handle is gone but the session lives on: drop the
                # incomplete datasets only *this* handle staged into, so
                # the shared file can still close cleanly later without
                # disturbing other clients' in-progress staging.
                others: set[str] = (
                    set().union(*session.touched.values())
                    if session.touched
                    else set()
                )
                dropped = session.file.discard_incomplete(only=mine - others)
                out["dropped"] = dropped
                with self._lock:
                    self._dropped_incomplete += len(dropped)
            return out
        del self._sessions[session.path]
        dropped: list[str] = []
        if drop_incomplete:
            dropped = session.file.discard_incomplete()
            with self._lock:
                self._dropped_incomplete += len(dropped)
        before = {p for p, ds in session.file._datasets.items() if ds.written}
        session.file.close()
        landed = [
            p
            for p, ds in session.file._datasets.items()
            if ds.written and p not in before
        ]
        with self._lock:
            self._datasets_landed += len(landed)
        out.update(closed=True, dropped=dropped)
        return out

    def release_all(self, fids: "list[str]") -> None:
        """Disconnect cleanup: release every handle a connection owned,
        dropping incomplete staged data instead of wedging the session."""
        for fid in fids:
            if fid not in self._fids:
                continue
            try:
                self.close(fid, drop_incomplete=True)
            except ReproError as exc:
                # A torn-down client must not take the daemon with it; the
                # failure is recorded where later clients will see it.
                session = self._fids.get(fid)
                if session is not None:
                    session.record_error("release", exc)

    def close_all(self) -> "list[str]":
        """Shutdown drain: flush what is complete, drop what is not, close
        every session.  Returns error strings for the shutdown log."""
        errors: list[str] = []
        for fid in list(self._fids):
            try:
                result = self.close(fid, drop_incomplete=True)
                errors.extend(result["errors"])
            except ReproError as exc:
                errors.append(f"close_all {fid}: {type(exc).__name__}: {exc}")
        return errors

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "open_files": len(self._sessions),
                "open_handles": len(self._fids),
                "flushes": self._flushes,
                "datasets_landed": self._datasets_landed,
                "dropped_incomplete": self._dropped_incomplete,
            }
