"""Wire protocol for the ``repro.serve`` ingest daemon.

Framing is deliberately dumb: every message — request or response — is

    ``[4-byte big-endian header length][JSON header][binary payload]``

where the header's ``nbytes`` field (0 when absent) gives the length of
the binary payload that follows.  Array data rides in the payload as raw
C-contiguous bytes; the header carries ``dtype`` and ``shape`` so either
side can reconstruct the ndarray without pickling (no code execution on
either end of the socket, and zero-copy sends from contiguous arrays).

Requests carry an ``op`` field; responses carry ``ok`` plus either the
op-specific result fields or ``error`` / ``message`` / ``retry`` (the
``retry`` flag marks backpressure rejections the client should back off
and resend, as opposed to hard failures).
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

from repro.errors import ReproError

#: Bump on any incompatible header/op change; exchanged in ``hello``.
PROTOCOL_VERSION = 1

#: Sanity ceiling on the JSON header (a header this big is a framing bug).
MAX_HEADER_BYTES = 1 << 20

#: Sanity ceiling on one binary payload (one staged block / one step).
MAX_PAYLOAD_BYTES = 1 << 31

_LEN = struct.Struct(">I")


class ServeError(ReproError):
    """Base error for the ingest daemon and its clients."""


class ProtocolError(ServeError):
    """Raised on malformed frames (bad length prefix, non-JSON header)."""


class ConnectionClosedError(ServeError):
    """Raised when the peer closed the socket mid-frame or between frames."""


class QueueFullError(ServeError):
    """Raised when the server's bounded ingest queue rejected the request
    and the client exhausted its retry budget (backpressure)."""


class RemoteOpError(ServeError):
    """A non-retryable error the server reported for one request."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosedError`."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosedError(
                f"peer closed the connection with {remaining}/{n} bytes pending"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(
    sock: socket.socket, header: dict, payload: "bytes | memoryview | None" = None
) -> None:
    """Send one frame; ``header['nbytes']`` is set from ``payload``."""
    header = dict(header)
    header["nbytes"] = 0 if payload is None else len(payload)
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({len(raw)} bytes)")
    sock.sendall(_LEN.pack(len(raw)) + raw)
    if payload is not None and len(payload):
        sock.sendall(payload)


def recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    """Receive one ``(header, payload)`` frame.

    Raises :class:`ConnectionClosedError` on EOF (clean between frames or
    torn mid-frame) and :class:`ProtocolError` on malformed data.
    """
    (n,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if n == 0 or n > MAX_HEADER_BYTES:
        raise ProtocolError(f"implausible header length {n}")
    try:
        header = json.loads(_recv_exact(sock, n).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be an object, got {type(header).__name__}")
    nbytes = int(header.get("nbytes", 0))
    if not 0 <= nbytes <= MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"implausible payload length {nbytes}")
    payload = _recv_exact(sock, nbytes) if nbytes else b""
    return header, payload


# ---------------------------------------------------------------------------
# Array packing
# ---------------------------------------------------------------------------

def array_meta(arr: np.ndarray) -> dict:
    """Header fields describing one array payload."""
    return {"dtype": arr.dtype.str, "shape": list(arr.shape)}


def pack_array(arr: np.ndarray) -> "tuple[dict, memoryview]":
    """``(meta, payload)`` for one array; zero-copy when contiguous."""
    arr = np.ascontiguousarray(arr)
    return array_meta(arr), memoryview(arr).cast("B")


def unpack_array(meta: dict, payload: "bytes | memoryview") -> np.ndarray:
    """Reconstruct the array a peer packed with :func:`pack_array`."""
    try:
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(s) for s in meta["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed array metadata {meta!r}: {exc}") from None
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if len(payload) != expected:
        raise ProtocolError(
            f"array payload is {len(payload)} bytes, expected {expected} "
            f"for dtype={dtype.str} shape={shape}"
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape)


def error_response(kind: str, message: str, retry: bool = False) -> dict:
    """A failure response header."""
    return {"ok": False, "error": kind, "message": message, "retry": retry}


def raise_for_response(header: dict) -> dict:
    """Return a successful response header or raise the matching error."""
    if header.get("ok"):
        return header
    kind = header.get("error", "ServeError")
    message = header.get("message", "request failed")
    if header.get("retry"):
        raise QueueFullError(message)
    raise RemoteOpError(kind, message)
