"""Entry point for ``python -m repro.serve``."""

from repro.serve.cli import main

raise SystemExit(main())
