"""The ``repro`` console entry point.

One installed script, three subcommands, each delegating to the module
CLI it names — so ``repro bench --quick`` is exactly
``python -m repro.bench --quick`` without the ``PYTHONPATH`` dance::

    repro bench   [args...]   # microbenchmark suite + perf-regression gate
    repro verify  [args...]   # round-trip certification / parity / fuzzing
    repro inspect [args...]   # PHD5 container inspector (ls/stat/dump/...)
    repro serve   [args...]   # multi-tenant ingest daemon (+ --smoke gate)

Registered in ``setup.py`` as ``console_scripts: repro=repro.tools.main:main``.
"""

from __future__ import annotations

import sys

from repro._version import __version__

_USAGE = """\
usage: repro [-h | --version] {bench,verify,inspect,serve} [args...]

subcommands:
  bench    executor microbenchmark suite (python -m repro.bench)
  verify   end-to-end verification suite (python -m repro.verify)
  inspect  PHD5 container inspector      (python -m repro.tools.inspect)
  serve    multi-tenant ingest daemon    (python -m repro.serve)

run `repro <subcommand> --help` for that tool's options.
"""


def main(argv: "list[str] | None" = None) -> int:
    """Dispatch to the named subcommand's CLI with the remaining args."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    if argv[0] == "--version":
        print(__version__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(rest)
    if command == "verify":
        from repro.verify.cli import main as verify_main

        return verify_main(rest)
    if command == "inspect":
        from repro.tools.inspect import main as inspect_main

        return inspect_main(rest)
    if command == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(rest)
    print(f"repro: unknown subcommand {command!r}\n\n{_USAGE}", file=sys.stderr, end="")
    return 2


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
