"""Inspect PHD5 containers from the command line.

The HDF5 ecosystem ships ``h5ls``/``h5dump``/``h5stat``; this module is
their PHD5 counterpart::

    python -m repro.tools.inspect ls      snapshot.phd5      # object tree
    python -m repro.tools.inspect stat    snapshot.phd5      # storage stats
    python -m repro.tools.inspect dump    snapshot.phd5 fields/temperature
    python -m repro.tools.inspect parts   snapshot.phd5 fields/temperature
    python -m repro.tools.inspect summary snapshot.phd5      # facade view

``stat`` reports per-dataset compression/reservation/overflow accounting —
the quantities the paper's extra-space mechanism trades — and ``parts``
prints a declared dataset's partition table (offsets, reserved vs actual,
overflow redirections).  ``summary`` reads the file through the
:mod:`repro.api` facade and pretty-prints what the facade recorded: one
row per dataset with its declared error bound, write strategy, SPMD
width, step count (time-axis datasets), and compression ratio, plus a
read-path footer (partitions decoded, decoded-partition cache hit-rate,
bytes decoded; ``--no-read-stats`` skips the probe reads behind it).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.hdf5.dataset import Dataset
from repro.hdf5.file import File
from repro.hdf5.filters import available_filters
from repro.hdf5.group import Group


def _walk(obj, depth: int = 0, out=None) -> None:
    # Resolve stdout at call time so pytest's capture (and any redirect)
    # sees the output.
    out = out or sys.stdout
    pad = "  " * depth
    if isinstance(obj, Group):
        label = obj.path if obj.path == "/" else obj.path.rsplit("/", 1)[-1]
        print(f"{pad}{label}/  (group, {len(obj.keys())} links)", file=out)
        for _, child in obj.items():
            _walk(child, depth + 1, out)
    else:
        ds: Dataset = obj
        extra = ""
        if ds.layout == "chunked":
            extra = f", chunks={ds.chunks}"
        elif ds.layout == "declared":
            extra = f", partitions={ds.n_partitions}"
        filt = ""
        if ds.filters:
            names = available_filters()
            filt = " <- " + "+".join(
                names.get(s.filter_id, str(s.filter_id)) for s in ds.filters.specs
            )
        print(
            f"{pad}{ds.path.rsplit('/', 1)[-1]}  "
            f"(dataset {ds.shape} {ds.dtype} {ds.layout}{extra}{filt})",
            file=out,
        )


def cmd_ls(args: argparse.Namespace) -> int:
    """Print the object tree."""
    with File(args.path, "r") as f:
        _walk(f.root)
    return 0


def cmd_stat(args: argparse.Namespace) -> int:
    """Print per-dataset storage accounting."""
    with File(args.path, "r") as f:
        total_logical = 0
        total_stored = 0
        print(f"{'dataset':40s} {'logical':>12s} {'stored':>12s} {'ratio':>7s} "
              f"{'overflow':>9s}")
        for path, obj in f.root.visit():
            if not isinstance(obj, Dataset):
                continue
            stored = obj.stored_nbytes
            total_logical += obj.nbytes
            total_stored += stored
            overflow = 0
            if obj.layout == "declared":
                overflow = sum(
                    obj.partition(i).overflow_nbytes for i in range(obj.n_partitions)
                )
            ratio = obj.nbytes / stored if stored else float("inf")
            print(f"{path:40s} {obj.nbytes:12d} {stored:12d} {ratio:7.2f} {overflow:9d}")
        if total_stored:
            print(f"{'TOTAL':40s} {total_logical:12d} {total_stored:12d} "
                  f"{total_logical / total_stored:7.2f}")
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    """Print a dataset's decoded contents (summary beyond --limit values)."""
    with File(args.path, "r") as f:
        obj = f[args.dataset]
        if not isinstance(obj, Dataset):
            print(f"error: {args.dataset!r} is a group", file=sys.stderr)
            return 2
        data = obj.read()
        flat = data.ravel()
        limit = args.limit
        head = np.array2string(flat[:limit], precision=6, threshold=limit)
        print(f"{obj.path}: shape={obj.shape} dtype={obj.dtype}")
        print(f"values[:{min(limit, flat.size)}] = {head}")
        print(f"min={flat.min():.6g} max={flat.max():.6g} mean={flat.mean():.6g}")
    return 0


def cmd_parts(args: argparse.Namespace) -> int:
    """Print a declared dataset's partition table."""
    with File(args.path, "r") as f:
        obj = f[args.dataset]
        if not isinstance(obj, Dataset) or obj.layout != "declared":
            print("error: not a declared-layout dataset", file=sys.stderr)
            return 2
        print(f"{'part':>5s} {'offset':>12s} {'reserved':>10s} {'actual':>10s} "
              f"{'fill':>6s} {'ovf_bytes':>10s} {'ovf_offset':>12s}")
        for i in range(obj.n_partitions):
            e = obj.partition(i)
            fill = e.actual / e.reserved if e.reserved else float("inf")
            print(f"{i:5d} {e.offset:12d} {e.reserved:10d} {e.actual:10d} "
                  f"{fill:6.1%} {e.overflow_nbytes:10d} {e.overflow_offset:12d}")
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    """Pretty-print a file the way the repro.open facade sees it."""
    from repro import api
    from repro.core.session import step_group

    with api.open(args.path, "r") as f:
        engine = f._engine
        facade = bool(engine.root.attrs.get("repro:facade"))
        steps = f.steps_written
        origin = "repro.open facade" if facade else "engine driver"
        print(f"{args.path}: {origin}-written"
              + (f", {steps} time step(s)" if steps else ""))
        datasets = f.datasets()
        if not datasets:
            print("(no datasets)")
            return 0
        print(f"{'dataset':28s} {'kind':>8s} {'shape':>18s} {'dtype':>8s} "
              f"{'bound':>9s} {'strategy':>8s} {'ranks':>5s} {'steps':>5s} "
              f"{'ratio':>7s}")
        for ds in datasets:
            attrs = ds.attrs
            bound = ds.declared_bound
            strategy = attrs.get("repro:strategy", "-")
            nranks = attrs.get("repro:nranks", "-")
            if ds.time_axis:
                kind, n_steps = "time", steps
                stored = sum(
                    engine[f"{step_group(t)}/{ds.leaf}"].stored_nbytes
                    for t in range(steps)
                )
                logical = ds.size * ds.dtype.itemsize
            else:
                kind, n_steps = "snap", "-"
                stored = ds._engine.stored_nbytes if ds._engine is not None else 0
                logical = ds.size * ds.dtype.itemsize
            ratio = logical / stored if stored else float("inf")
            print(f"{ds.name.lstrip('/'):28s} {kind:>8s} "
                  f"{str(ds.shape):>18s} {str(ds.dtype):>8s} "
                  f"{(f'{bound:.1e}' if bound is not None else 'exact'):>9s} "
                  f"{strategy:>8s} {str(nranks):>5s} {str(n_steps):>5s} "
                  f"{ratio:>7.2f}")
        if not args.no_read_stats:
            _print_read_stats(f, datasets)
    return 0


def _print_read_stats(f, datasets) -> None:
    """The summary's read-path footer.

    Decodes every snapshot dataset twice through the facade — the first
    pass measures decode volume, the second shows what the decoded-
    partition cache absorbs — and prints the per-file counters plus the
    process-wide cache occupancy.
    """
    from repro.cache import cache_stats

    probe = [ds for ds in datasets if not ds.time_axis and ds.written]
    if not probe:
        return
    for ds in probe:
        ds[...]
        ds[...]
    stats = f.read_stats
    cache = cache_stats()
    print(f"\nread path ({len(probe)} dataset(s), two passes each):")
    print(f"  partitions decoded: {stats.partitions_decoded}, "
          f"cache hits: {stats.cache_hits}, "
          f"hit rate: {stats.hit_rate:.2f}")
    print(f"  bytes decoded: {stats.bytes_decoded}")
    print(f"  process cache: {cache.entries} entries, "
          f"{cache.current_bytes}/{cache.max_bytes} bytes"
          + ("" if cache.max_bytes else " (disabled)"))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="repro.tools.inspect", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_ls = sub.add_parser("ls", help="object tree")
    p_ls.add_argument("path")
    p_ls.set_defaults(fn=cmd_ls)
    p_stat = sub.add_parser("stat", help="storage statistics")
    p_stat.add_argument("path")
    p_stat.set_defaults(fn=cmd_stat)
    p_dump = sub.add_parser("dump", help="decode and print a dataset")
    p_dump.add_argument("path")
    p_dump.add_argument("dataset")
    p_dump.add_argument("--limit", type=int, default=8)
    p_dump.set_defaults(fn=cmd_dump)
    p_parts = sub.add_parser("parts", help="partition table of a declared dataset")
    p_parts.add_argument("path")
    p_parts.add_argument("dataset")
    p_parts.set_defaults(fn=cmd_parts)
    p_summary = sub.add_parser(
        "summary", help="facade view: per-dataset bound/strategy/steps/ratio"
    )
    p_summary.add_argument("path")
    p_summary.add_argument("--no-read-stats", action="store_true",
                           help="skip the read-path probe (which decodes "
                                "every snapshot dataset twice to report "
                                "partition decode counts and cache hit-rate)")
    p_summary.set_defaults(fn=cmd_summary)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
