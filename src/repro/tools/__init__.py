"""Command-line utilities for PHD5 containers (h5ls / h5dump analogues)."""
