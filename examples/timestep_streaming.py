#!/usr/bin/env python
"""Streaming a time-step series into one file with warm-started planning.

The paper's Fig. 15 scenario as a first-class workload: a simulation dumps
a snapshot every time-step, and adjacent snapshots compress almost
identically.  :class:`~repro.core.session.TimestepSession` exploits that —
step 0 plans cold (sampling-based size prediction + Algorithm 1 ordering);
every later step warm-starts both phases from the previous step's
*measured* sizes, skipping the planning work entirely while the extra
space / overflow machinery still guarantees exact read-back.

Run:  python examples/timestep_streaming.py
"""

import os
import tempfile

import numpy as np

from repro.core import PipelineConfig
from repro.core.session import TimestepSession, step_group
from repro.data.timesteps import TimestepSeries
from repro.hdf5 import File


def main() -> None:
    shape = (32, 32, 32)
    n_steps = 5
    series = TimestepSeries(shape, n_steps=n_steps, seed=42)
    path = os.path.join(tempfile.mkdtemp(), "series.phd5")

    print(f"streaming {n_steps} steps of a {shape} Nyx series -> {path}\n")
    with TimestepSession(
        path,
        series,
        nranks=4,
        strategy="reorder",
        config=PipelineConfig(extra_space_ratio=1.25),
        field_names=["baryon_density", "temperature", "velocity_x"],
    ) as sess:
        print(f"{'step':>4} {'mode':>5} {'seconds':>8} {'pred err':>9} {'overflow':>9}")
        for res in sess.write_all():
            mode = "warm" if res.warm_started else "cold"
            print(
                f"{res.step:>4} {mode:>5} {res.seconds:>8.3f}"
                f" {res.prediction_error:>+9.1%} {res.overflow_nbytes:>8}B"
            )
        cold = sess.results[0].seconds
        warm = float(np.mean([r.seconds for r in sess.results[1:]]))
        print("\nwarm steps skip the sampling + reorder planning:"
              f" {cold:.3f}s cold vs {warm:.3f}s warm ({cold / warm:.1f}x)")

    # The session file persists: every step reads back within its bound.
    with File(path, "r") as f:
        series_check = TimestepSeries(shape, n_steps=n_steps, seed=42)
        worst = 0.0
        for step in range(n_steps):
            gen = series_check.snapshot_generator(step)
            for name in ("baryon_density", "temperature", "velocity_x"):
                out = f[f"{step_group(step)}/{name}"].read()
                bound = gen.error_bound(name)
                err = float(np.max(np.abs(out.astype(np.float64) - gen.field(name))))
                assert err <= bound * (1 + 1e-6), (step, name)
                worst = max(worst, err / bound)
        print(f"verified: {n_steps} steps x 3 fields read back within bounds "
              f"(worst error at {worst:.0%} of bound)")
        print(f"file size: {os.path.getsize(path)} bytes")


if __name__ == "__main__":
    main()
