#!/usr/bin/env python
"""Streaming a time-step series through the facade's unlimited axis.

The paper's Fig. 15 scenario as plain dataset calls: create each field
with ``maxshape=(None, *shape)`` and every ``f.append_step(...)`` streams
one snapshot through the shared
:class:`~repro.core.session.TimestepSession` — step 0 plans cold
(sampling-based size prediction + Algorithm 1 ordering); every later step
warm-starts both phases from the previous step's *measured* sizes, while
the extra space / overflow machinery still guarantees bounded read-back.

Run:  python examples/timestep_streaming.py
"""

import os
import tempfile

import numpy as np

import repro
from repro.data.timesteps import TimestepSeries


def main() -> None:
    shape = (32, 32, 32)
    n_steps = 5
    names = ["baryon_density", "temperature", "velocity_x"]
    series = TimestepSeries(shape, n_steps=n_steps, seed=42)
    gen0 = series.snapshot_generator(0)
    path = os.path.join(tempfile.mkdtemp(), "series.phd5")

    print(f"streaming {n_steps} steps of a {shape} Nyx series -> {path}\n")
    with repro.open(path, "w", nranks=4,
                    config=repro.PipelineConfig(extra_space_ratio=1.25)) as f:
        for n in names:
            f.create_dataset(n, shape, np.float32, maxshape=(None,) + shape,
                             error_bound=gen0.error_bound(n))
        print(f"{'step':>4} {'mode':>5} {'seconds':>8} {'pred err':>9} {'overflow':>9}")
        results = []
        for step in range(n_steps):
            gen = series.snapshot_generator(step)
            res = f.append_step({n: gen.field(n) for n in names})
            results.append(res)
            mode = "warm" if res.warm_started else "cold"
            print(f"{res.step:>4} {mode:>5} {res.seconds:>8.3f}"
                  f" {res.prediction_error:>+9.1%} {res.overflow_nbytes:>8}B")
        cold = results[0].seconds
        warm = float(np.mean([r.seconds for r in results[1:]]))
        print("\nwarm steps skip the sampling + reorder planning:"
              f" {cold:.3f}s cold vs {warm:.3f}s warm ({cold / warm:.1f}x)")
        assert f["baryon_density"].shape == (n_steps,) + shape

    # The file persists: every step of every field reads back in bounds.
    with repro.open(path) as f:
        check = TimestepSeries(shape, n_steps=n_steps, seed=42)
        worst = 0.0
        for step in range(n_steps):
            gen = check.snapshot_generator(step)
            for name in names:
                out = f[name][step]
                bound = gen.error_bound(name)
                err = float(np.max(np.abs(out.astype(np.float64) - gen.field(name))))
                assert err <= bound * (1 + 1e-6), (step, name)
                worst = max(worst, err / bound)
        print(f"verified: {n_steps} steps x {len(names)} fields read back within "
              f"bounds (worst error at {worst:.0%} of bound)")
        print(f"file size: {os.path.getsize(path)} bytes")


if __name__ == "__main__":
    main()
