#!/usr/bin/env python
"""Nyx snapshot parallel write: compare all four strategies end to end.

Reproduces the paper's Fig. 16 scenario at laptop scale, twice:

* **functionally** — runs the real pipelines (no-compression, H5Z-SZ-style
  filter, predictive overlap+reorder) on thread ranks against real shared
  files and verifies every byte read back;
* **performance** — replays the same snapshot through the discrete-event
  simulator at 512 simulated Summit processes and prints the Fig. 16-style
  breakdown plus an ASCII timeline (the paper's Fig. 4).

Run:  python examples/nyx_parallel_write.py
"""

import os
import tempfile

import numpy as np

from repro.compression import SZCompressor
from repro.core import build_workload, simulate_strategy
from repro.core.pipeline import filter_write_pipeline, predictive_write_pipeline
from repro.core.workload import scale_workload
from repro.data import NyxGenerator, grid_partition
from repro.hdf5 import File, FileAccessProps
from repro.mpi import run_spmd
from repro.sim import SUMMIT

SHAPE = (48, 48, 48)
NRANKS = 8


def functional_comparison(workdir: str) -> None:
    """Run the real pipelines and check the files agree."""
    gen = NyxGenerator(SHAPE, seed=42)
    names = list(gen.field_names)
    parts = grid_partition(SHAPE, NRANKS)
    codecs = {n: SZCompressor(bound=gen.error_bound(n), mode="abs") for n in names}

    def payload(rank):
        p = parts[rank]
        local = {n: np.ascontiguousarray(p.extract(gen.field(n))) for n in names}
        return local, [[s.start, s.stop] for s in p.slices]

    path_pred = os.path.join(workdir, "nyx_predictive.phd5")
    fpred = File(path_pred, "w", fapl=FileAccessProps(async_io=True, async_workers=4))

    def rank_pred(comm):
        local, region = payload(comm.rank)
        return predictive_write_pipeline(comm, fpred, local, region, SHAPE, codecs)

    stats = run_spmd(NRANKS, rank_pred)
    fpred.close()

    path_filt = os.path.join(workdir, "nyx_filter.phd5")
    ffilt = File(path_filt, "w")

    def rank_filt(comm):
        local, region = payload(comm.rank)
        return filter_write_pipeline(comm, ffilt, local, region, SHAPE, codecs)

    run_spmd(NRANKS, rank_filt)
    ffilt.close()

    size_pred = os.path.getsize(path_pred)
    size_filt = os.path.getsize(path_filt)
    logical = sum(gen.field(n).nbytes for n in names)
    print(f"functional run ({NRANKS} ranks, {len(names)} fields, {SHAPE} grid):")
    print(f"  logical data        : {logical / 1e6:8.2f} MB")
    print(f"  filter baseline file: {size_filt / 1e6:8.2f} MB "
          f"(ratio {logical / size_filt:.1f}x, no extra space)")
    print(f"  predictive file     : {size_pred / 1e6:8.2f} MB "
          f"(ratio {logical / size_pred:.1f}x, Rspace=1.25)")
    overflow = sum(s.total_overflow for s in stats)
    print(f"  overflow redirected : {overflow} bytes "
          f"across {sum(1 for s in stats if s.total_overflow)} ranks")
    with File(path_pred, "r") as fa, File(path_filt, "r") as fb:
        for n in names:
            assert np.array_equal(fa[f"fields/{n}"].read(), fb[f"fields/{n}"].read())
    print("  contents verified  : predictive == filter reconstruction\n")


def performance_comparison() -> None:
    """Fig. 16-style breakdown on the simulator at 512 Summit processes."""
    wl = build_workload("nyx", nranks=8, shape=(64, 64, 64), seed=3,
                        include_particles=True)
    wl = scale_workload(wl, nranks=512, values_per_partition=256**3)
    print("simulated run: 512 Summit processes, 9 fields, "
          f"{wl.original_total / 1e9:.0f} GB logical, ratio {wl.overall_ratio:.1f}x")
    header = f"  {'solution':9s} {'total':>8s} {'compress':>9s} {'write':>8s} {'exposed':>8s}"
    print(header)
    results = {}
    for strat in ("nocomp", "filter", "overlap", "reorder"):
        res = simulate_strategy(strat, wl, SUMMIT)
        results[strat] = res
        print(f"  {strat:9s} {res.makespan_seconds:7.2f}s {res.compress_seconds:8.2f}s "
              f"{res.write_seconds:7.2f}s {res.write_exposed_seconds:7.2f}s")
    def _speedup(num: str, den: str) -> float:
        return results[num].makespan_seconds / results[den].makespan_seconds

    print(f"\n  speedups: filter/nocomp={_speedup('nocomp', 'filter'):.2f}x  "
          f"overlap/filter={_speedup('filter', 'overlap'):.2f}x  "
          f"reorder/nocomp={_speedup('nocomp', 'reorder'):.2f}x")
    print("  (paper: 1.87x, 1.79x, 4.46x)\n")
    # Fig. 4-style timeline of a few ranks.
    trace = results["reorder"].trace
    few = [r for r in trace.records if r.rank < 4]
    sub = type(trace)()
    sub.records = few
    print("timeline (4 of 512 ranks; P=predict, A=allgather, C=compress, W=write, O=overflow):")
    print(sub.render_timeline(width=70))


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="nyx_write_")
    functional_comparison(workdir)
    performance_comparison()


if __name__ == "__main__":
    main()
