#!/usr/bin/env python
"""VPIC particle dump write with per-field compression diversity.

Particle dumps stress the predictive pipeline differently from mesh data:
positions and weights compress 50-300x while momenta manage only ~5x, so
per-partition size predictions span two orders of magnitude and the
compression-order optimizer has real work to do.

The example writes a synthetic dump from 8 ranks through the predictive
pipeline, shows each rank's optimized field order, and verifies the shared
file against the per-field error bounds.

Run:  python examples/vpic_particle_write.py
"""

import os
import tempfile

import numpy as np

from repro.compression import SZCompressor
from repro.core import PipelineConfig
from repro.core.pipeline import predictive_write_pipeline
from repro.data import VPICGenerator, partition_particles
from repro.hdf5 import File, FileAccessProps
from repro.mpi import run_spmd

N_PARTICLES = 1 << 18
NRANKS = 8


def main() -> None:
    gen = VPICGenerator(N_PARTICLES, seed=11)
    names = list(gen.field_names)
    parts = partition_particles(N_PARTICLES, NRANKS)
    codecs = {n: SZCompressor(bound=gen.error_bound(n), mode="rel") for n in names}

    print(f"VPIC dump: {N_PARTICLES} particles x {len(names)} fields "
          f"({gen.logical_nbytes() / 1e6:.1f} MB logical)")

    path = os.path.join(tempfile.mkdtemp(prefix="vpic_"), "dump.phd5")
    f = File(path, "w", fapl=FileAccessProps(async_io=True, async_workers=4))

    def rank_fn(comm):
        p = parts[comm.rank]
        local = {n: np.ascontiguousarray(p.extract(gen.field(n))) for n in names}
        region = [[s.start, s.stop] for s in p.slices]
        return predictive_write_pipeline(
            comm, f, local, region, (N_PARTICLES,), codecs,
            config=PipelineConfig(extra_space_ratio=1.25, reorder=True),
        )

    stats = run_spmd(NRANKS, rank_fn)
    f.close()

    print("\nper-rank optimized compression order (big writes first):")
    for s in stats[:4]:
        print(f"  rank {s.rank}: {' -> '.join(s.order)}")

    print("\nper-field compression on rank 0:")
    s0 = stats[0]
    for n in names:
        orig = parts[0].n_values * 4
        print(f"  {n:7s} predicted={s0.predicted_nbytes[n]:8d}B "
              f"actual={s0.actual_nbytes[n]:8d}B  ratio={orig / s0.actual_nbytes[n]:7.1f}x")

    file_size = os.path.getsize(path)
    print(f"\nshared file: {file_size / 1e6:.2f} MB "
          f"(overall ratio {gen.logical_nbytes() / file_size:.1f}x incl. extra space)")

    with File(path, "r") as fr:
        for n in names:
            out = fr[f"fields/{n}"].read()
            field = gen.field(n).astype(np.float64)
            eb = gen.error_bound(n) * (field.max() - field.min())
            err = float(np.max(np.abs(out.astype(np.float64) - field)))
            assert err <= eb * (1 + 1e-6), n
    print("verified: every field within its relative error bound")


if __name__ == "__main__":
    main()
