#!/usr/bin/env python
"""Per-timestep strategy auto-tuning: scenarios, the tuner, and a session.

The paper's four write strategies each win in a different regime (Fig. 10,
Fig. 16).  This example shows the adaptive layer end to end:

1. the deterministic scenario generator sweeps named workload regimes;
2. the :class:`~repro.core.autotune.AutoTuner` prices every registered
   strategy analytically and its pick is compared against an exhaustive
   simulate-everything oracle;
3. a :class:`~repro.core.session.TimestepSession` in ``strategy="auto"``
   mode streams a real time-step series, re-tuning the strategy from each
   step's measured actual sizes.

Run:  python examples/autotune_streaming.py
"""

import os
import tempfile

from repro.core import SCENARIOS, AutoTuner, choice_regret, exhaustive_oracle
from repro.core.session import TimestepSession
from repro.data.timesteps import TimestepSeries


def tune_over_scenarios() -> None:
    """Part 1/2: the tuner vs the exhaustive simulation oracle."""
    machine = "bebop"
    tuner = AutoTuner(machine)
    print(f"{'scenario':<18} {'tuner pick':>10} {'oracle':>8} {'regret':>8}")
    matches = 0
    for sc in SCENARIOS:
        workload = sc.workload(seed=0)
        decision = tuner.evaluate(workload)
        oracle = exhaustive_oracle(workload, machine)
        regret = choice_regret(decision.choice, workload, machine)
        ok = decision.choice == oracle or regret <= 0.01
        matches += ok
        print(
            f"{sc.name:<18} {decision.choice:>10} {oracle:>8} {regret:>7.2%}"
            f"{'' if ok else '  <-- miss'}"
        )
    print(f"\n{matches}/{len(SCENARIOS)} scenarios matched within 1% regret\n")


def stream_with_auto_strategy() -> None:
    """Part 2/2: strategy="auto" on a real streaming series."""
    shape = (24, 24, 24)
    n_steps = 5
    series = TimestepSeries(shape, n_steps=n_steps, seed=42)
    path = os.path.join(tempfile.mkdtemp(), "auto.phd5")
    fields = ["baryon_density", "temperature", "velocity_x"]

    print(f"streaming {n_steps} steps of a {shape} Nyx series with strategy='auto'")
    with TimestepSession(
        path, series, nranks=4, strategy="auto", field_names=fields
    ) as sess:
        print(f"{'step':>4} {'ran':>8} {'mode':>5} {'next pick':>10} {'margin':>8}")
        for res in sess.write_all():
            mode = "warm" if res.warm_started else "cold"
            ranking = res.tuning.ranking() if res.tuning else []
            margin = (
                ranking[1].makespan_seconds / ranking[0].makespan_seconds - 1.0
                if len(ranking) > 1 and ranking[0].makespan_seconds > 0
                else 0.0
            )
            pick = res.tuning.choice if res.tuning else "-"
            print(f"{res.step:>4} {res.strategy:>8} {mode:>5} {pick:>10} {margin:>7.1%}")
        # The decisions come from the modeled machine (bebop): tiny demo
        # partitions are latency-dominated, which a collective amortizes.
        last = sess.results[-1].tuning
        print("\nfinal per-strategy estimates (modeled seconds on bebop):")
        for est in last.ranking():
            print(f"  {est.strategy:<8} {est.makespan_seconds:8.4f}s"
                  f"  (overflow {est.overflow_nbytes}B)")
        out = sess.read_step(n_steps - 1)
    print(f"\nread back step {n_steps - 1}: "
          f"{ {k: v.shape for k, v in out.items()} } — file persists at {path}")


if __name__ == "__main__":
    tune_over_scenarios()
    stream_with_auto_strategy()
