#!/usr/bin/env python
"""Read-side scale-out: partial reads, the decoded-partition cache, and
concurrent readers.

Walks the read path end to end:

1. write one multi-rank predictive snapshot through ``repro.open``;
2. replay an 80/20 hotspot access trace (80% of reads on 20% of the
   address space — checkpoint-inspection skew) and watch the decoded-
   partition LRU absorb the hot set;
3. size / disable the cache with ``repro.cache.configure``;
4. fan the partition decode out over the thread executor and read the
   same file from several concurrent reader threads, verifying every
   route returns identical bytes.

Run:  python examples/hotspot_reads.py
"""

import os
import tempfile
import threading
import time

import numpy as np

import repro
from repro.bench.read import WorkloadGenerator
from repro.cache import DEFAULT_MAX_BYTES, configure, get_cache
from repro.data import NyxGenerator

SHAPE = (48, 48, 48)
BOUND = 1e-3


def main() -> None:
    gen = NyxGenerator(SHAPE, seed=11)
    data = gen.field("baryon_density")
    path = os.path.join(tempfile.mkdtemp(), "snapshot.phd5")
    with repro.open(path, "w", nranks=8) as f:
        f.create_dataset("fields/density", SHAPE, np.float32,
                         error_bound=BOUND, data=data)

    # --- 1. partial reads decode only the partitions they touch ------------
    get_cache().clear()
    with repro.open(path) as f:
        ds = f["fields/density"]
        corner = ds[0:12, 0:12, 0:12]        # decodes the touched octant(s)
        touched = f.read_stats.partitions_decoded
        full = ds[...]                        # decodes only the remainder
        print(f"[1] corner read decoded {touched}/8 partitions; "
              f"full read reused them ({f.read_stats.cache_hits} cache hits)")
        assert np.abs(corner - data[0:12, 0:12, 0:12]).max() <= BOUND * (1 + 1e-6)

    # --- 2. the 80/20 hotspot trace against the decoded-partition LRU ------
    get_cache().clear()
    wg = WorkloadGenerator(SHAPE[0], seed=3)
    trace = wg.generate_hotspot(500, hot_ratio=0.8, hot_data_fraction=0.2)
    with repro.open(path) as f:
        ds = f["fields/density"]
        latencies = []
        for addr in trace:
            t0 = time.perf_counter()
            ds[addr:addr + 1]                 # one slab per access
            latencies.append(time.perf_counter() - t0)
        latencies.sort()
        stats = f.read_stats
        print(f"[2] hotspot 80/20, {len(trace)} reads: "
              f"cache hit-rate={stats.hit_rate:.3f}  "
              f"p50={latencies[len(latencies) // 2] * 1e3:.3f}ms  "
              f"p99={latencies[int(0.99 * (len(latencies) - 1))] * 1e3:.3f}ms")

    # --- 3. sizing and disabling the cache ---------------------------------
    configure(0)                              # 0 bytes: every read decodes
    get_cache().clear()
    with repro.open(path) as f:
        f["fields/density"][...]
        f["fields/density"][...]
        print(f"[3] cache disabled: {f.read_stats.partitions_decoded} decodes, "
              f"{f.read_stats.cache_hits} hits "
              f"(REPRO_CACHE_BYTES=0 does the same from the environment)")
    configure(DEFAULT_MAX_BYTES)              # restore the 256 MiB default

    # --- 4. parallel decode and concurrent readers -------------------------
    get_cache().clear()
    with repro.open(path, executor="thread") as f:
        fanned = f["fields/density"][...]     # partitions decoded via map_cells
    assert np.array_equal(fanned, full)

    results = {}

    def reader(tid: int) -> None:
        with repro.open(path) as f:           # repro.open is reader-safe
            results[tid] = f["fields/density"][...]

    threads = [threading.Thread(target=reader, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(np.array_equal(r, full) for r in results.values())
    print(f"[4] thread-executor decode and {len(threads)} concurrent readers "
          "returned byte-identical arrays")


if __name__ == "__main__":
    main()
