#!/usr/bin/env python
"""Quickstart: compress a field, predict its size, write it via repro.open.

Walks the three layers of the library in ~60 lines:

1. the SZ-style error-bounded compressor;
2. the predictive models (size prediction *before* compressing);
3. the h5py-style facade: ``repro.open()`` + ``ds[...] = arr`` runs the
   full predictive pipeline — predicted offsets, extra space, overlapped
   async writes, overflow repair — on 4 thread ranks against a shared
   PHD5 file, then reads back within the error bounds.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro
from repro.compression import evaluate_codec
from repro.data import NyxGenerator


def main() -> None:
    shape = (48, 48, 48)
    gen = NyxGenerator(shape, seed=7)
    data = gen.field("temperature")

    # --- 1. error-bounded lossy compression --------------------------------
    codec = repro.SZCompressor(bound=gen.error_bound("temperature"), mode="abs")
    result = evaluate_codec(codec, data)
    print(f"[1] SZ compression: ratio={result.ratio:.1f}x  "
          f"bit-rate={result.bit_rate:.2f} bits/value  "
          f"max error={result.max_error:.3g} (bound {codec.max_error():.3g})")

    # --- 2. size prediction without compressing ----------------------------
    from repro.modeling import RatioQualityModel

    prediction = RatioQualityModel(codec).predict(data)
    actual = len(codec.compress(data))
    print(f"[2] predicted size={prediction.predicted_nbytes}B  actual={actual}B  "
          f"error={abs(prediction.predicted_nbytes - actual) / actual:.1%}")

    # --- 3. transparent predictive writes through the facade ---------------
    names = list(gen.field_names)
    path = os.path.join(tempfile.mkdtemp(), "snapshot.phd5")
    with repro.open(path, "w", nranks=4) as f:
        for n in names:
            ds = f.create_dataset(f"fields/{n}", shape, np.float32,
                                  error_bound=gen.error_bound(n))
            ds[...] = gen.field(n)  # predict -> plan -> compress -> write
        f.flush()  # one collective multi-field run (also implicit on close)
        stats = f["fields/" + names[0]].stats
        print(f"[3] wrote {len(names)} fields through the predictive pipeline")
        for s in stats:
            print(f"    rank {s.rank}: order={s.order[:3]}...  "
                  f"compressed={s.total_actual}B  overflow={s.total_overflow}B")
        report = f.verify()  # certify against the staged reference data
        assert report.passed, report.violations
    print(f"[3] file size: {os.path.getsize(path)} bytes")

    with repro.open(path) as fr:
        for n in names:
            out = fr[f"fields/{n}"][...]
            err = float(np.max(np.abs(out.astype(np.float64) - gen.field(n))))
            assert err <= gen.error_bound(n) * (1 + 1e-6)
        block = fr[f"fields/{names[0]}"][8:24, :, :]  # partition-aware read
        print(f"[3] verified: all {len(names)} fields read back within their "
              f"error bounds (partial read {block.shape} too)")


if __name__ == "__main__":
    main()
