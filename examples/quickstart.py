#!/usr/bin/env python
"""Quickstart: compress a field, predict its size, write it in parallel.

Walks the three layers of the library in ~60 lines:

1. the SZ-style error-bounded compressor;
2. the predictive models (size prediction *before* compressing);
3. the parallel predictive-write pipeline on 4 ranks against a shared
   PHD5 file, read back and verified against the error bound.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.compression import SZCompressor, evaluate_codec
from repro.core import PipelineConfig
from repro.core.pipeline import predictive_write_pipeline
from repro.data import NyxGenerator, grid_partition
from repro.hdf5 import File, FileAccessProps
from repro.modeling import RatioQualityModel
from repro.mpi import run_spmd


def main() -> None:
    shape = (48, 48, 48)
    gen = NyxGenerator(shape, seed=7)
    data = gen.field("temperature")

    # --- 1. error-bounded lossy compression --------------------------------
    codec = SZCompressor(bound=gen.error_bound("temperature"), mode="abs")
    result = evaluate_codec(codec, data)
    print(f"[1] SZ compression: ratio={result.ratio:.1f}x  "
          f"bit-rate={result.bit_rate:.2f} bits/value  "
          f"max error={result.max_error:.3g} (bound {codec.max_error():.3g})")

    # --- 2. size prediction without compressing ----------------------------
    prediction = RatioQualityModel(codec).predict(data)
    actual = len(codec.compress(data))
    print(f"[2] predicted size={prediction.predicted_nbytes}B  actual={actual}B  "
          f"error={abs(prediction.predicted_nbytes - actual) / actual:.1%}")

    # --- 3. parallel predictive write to a shared file ---------------------
    nranks = 4
    names = list(gen.field_names)
    parts = grid_partition(shape, nranks)
    codecs = {n: SZCompressor(bound=gen.error_bound(n), mode="abs") for n in names}
    path = os.path.join(tempfile.mkdtemp(), "snapshot.phd5")
    f = File(path, "w", fapl=FileAccessProps(async_io=True, async_workers=4))

    def rank_fn(comm):
        p = parts[comm.rank]
        local = {n: np.ascontiguousarray(p.extract(gen.field(n))) for n in names}
        region = [[s.start, s.stop] for s in p.slices]
        return predictive_write_pipeline(
            comm, f, local, region, shape, codecs, config=PipelineConfig()
        )

    stats = run_spmd(nranks, rank_fn)
    f.close()
    print(f"[3] wrote {os.path.getsize(path)} bytes to {path}")
    for s in stats:
        print(f"    rank {s.rank}: order={s.order[:3]}...  "
              f"compressed={s.total_actual}B  overflow={s.total_overflow}B")

    with File(path, "r") as fr:
        for n in names:
            out = fr[f"fields/{n}"].read()
            err = float(np.max(np.abs(out.astype(np.float64) - gen.field(n))))
            assert err <= gen.error_bound(n) * (1 + 1e-6)
        print(f"[3] verified: all {len(names)} fields read back within their "
              "error bounds")


if __name__ == "__main__":
    main()
