#!/usr/bin/env python
"""Tuning the extra-space ratio: the paper's Fig. 9 / Fig. 14 workflow.

The extra-space ratio Rspace is the framework's one user-facing knob:
bigger slots waste storage but absorb prediction error (fewer overflows,
less write-time penalty).  This example

1. sweeps Rspace over the supported interval [1.1, 1.43] on a simulated
   256-process Summit run and prints the overhead trade-off curve,
2. shows the weight-based shortcut (`PipelineConfig.from_weight`) that maps
   a single performance-vs-storage preference onto the interval.

Run:  python examples/tuning_extra_space.py
"""

from repro.core import PipelineConfig, build_workload, simulate_strategy
from repro.core.config import extra_space_for_weight
from repro.core.workload import scale_workload
from repro.sim import SUMMIT


def main() -> None:
    wl = build_workload(
        "nyx", nranks=8, shape=(64, 64, 64), seed=5,
        bound_scale=4.0,  # ~bit-rate 2, the paper's operating point
        include_particles=True,
    )
    wl = scale_workload(wl, nranks=256, values_per_partition=256**3)
    print("workload: 256 simulated Summit processes, 9 fields, "
          f"ratio {wl.overall_ratio:.1f}x (bit-rate {wl.overall_bit_rate:.2f})\n")

    print(f"{'Rspace':>7s} {'write overhead':>15s} {'storage overhead':>17s} "
          f"{'overflowing partitions':>23s}")
    for rspace in (1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.43):
        config = PipelineConfig(extra_space_ratio=rspace)
        res = simulate_strategy("reorder", wl, SUMMIT, config)
        ref = simulate_strategy("reorder", wl, SUMMIT, config, handle_overflow=False)
        perf = max(0.0, (res.write_seconds - ref.write_seconds) / ref.write_seconds)
        frac = res.n_overflow_partitions / (res.nranks * res.nfields)
        print(f"{rspace:7.2f} {perf:14.1%} {res.storage_overhead_vs_ideal:16.1%} "
              f"{frac:22.1%}")

    print("\nweight-based shortcut (performance weight -> Rspace):")
    for w in (0.0, 0.25, 0.5, 0.75, 1.0):
        print(f"  weight {w:.2f} -> Rspace {extra_space_for_weight(w):.3f}")
    print("\nPipelineConfig.from_weight(0.5) ->",
          PipelineConfig.from_weight(0.5).extra_space_ratio)


if __name__ == "__main__":
    main()
