"""Figs. 17a/b + 18a/b — solutions across compression ratios."""

import pytest

from repro.bench.figures import fig17_ratio_sweep
from repro.bench.harness import save_result


@pytest.mark.parametrize("dataset", ["nyx", "vpic"])
def test_fig17_ratio_sweep(run_once, dataset):
    res = run_once(fig17_ratio_sweep, dataset, nranks=128)
    save_result(res)
    rows = sorted(res.rows, key=lambda r: r["ratio"])
    # Higher compression ratio -> faster write overall (paper: "the higher
    # compression ratio almost always indicates the better write
    # performance").
    reorder_times = [r["reorder_s"] for r in rows]
    assert reorder_times == sorted(reorder_times, reverse=True)
    # Reordering helps most in the balanced middle of the sweep and less at
    # the extremes (paper Fig. 10/17 discussion).
    gains = [r["reorder_gain"] for r in rows]
    mid_gain = max(gains[1:-1])
    assert mid_gain >= max(gains[0], gains[-1]) - 0.02
    # Our solution beats the filter baseline at every ratio.
    assert all(r["improve_vs_filter"] > 1.0 for r in rows)
    # At a very low compression ratio the filter baseline can lose to the
    # non-compression write (paper: "even worse performance than the
    # non-compression write") — check the relationship is at least strained.
    lowest = rows[0]
    assert lowest["filter_s"] > 0.45 * lowest["nocomp_s"]
