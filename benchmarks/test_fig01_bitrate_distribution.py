"""Fig. 1 — compression bit-rate distribution over 512 partitions."""

from repro.bench.figures import fig01_bitrate_distribution
from repro.bench.harness import save_result


def test_fig01(run_once):
    res = run_once(fig01_bitrate_distribution, nranks=512, shape=(96, 96, 96))
    save_result(res)
    # Paper's point: one configuration yields a *wide* spread of bit-rates
    # across partitions, defeating naive pre-allocation.
    assert res.meta["spread"] > 1.5
    assert sum(r["partitions"] for r in res.rows) == 512
    # The histogram is not a single spike.
    occupied = sum(1 for r in res.rows if r["partitions"] > 0)
    assert occupied >= 5
