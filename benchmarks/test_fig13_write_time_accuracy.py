"""Fig. 13 — write-time prediction accuracy (Eq. 2 vs simulated writes)."""

import numpy as np

from repro.bench.figures import fig13_write_time_accuracy
from repro.bench.harness import save_result


def test_fig13(run_once):
    res = run_once(fig13_write_time_accuracy)
    save_result(res)
    rows = res.rows
    # Eq. (2) is deliberately coarse; the paper requires only *relative*
    # fidelity: larger partitions must be predicted to take longer, and
    # high-bit-rate partitions are predicted better than tiny ones.
    pred = np.array([r["predicted_s"] for r in rows])
    act = np.array([r["actual_s"] for r in rows])
    assert np.corrcoef(pred, act)[0, 1] > 0.8
    hi = [r for r in rows if r["bit_rate"] >= np.median([x["bit_rate"] for x in rows])]
    lo = [r for r in rows if r["bit_rate"] < np.median([x["bit_rate"] for x in rows])]
    def err(rs):
        return np.median(
            [abs(r["predicted_s"] - r["actual_s"]) / r["actual_s"] for r in rs]
        )
    # Paper: "the accuracy of low bit-rate is slightly lower than that of
    # high bit-rate" (small writes hit the latency-dominated ramp).
    assert err(hi) <= err(lo) * 1.5
