"""Figs. 17c/d + 18c/d — weak scaling from 256 to 4096 processes."""

import numpy as np
import pytest

from repro.bench.figures import fig17_scaling
from repro.bench.harness import save_result


@pytest.mark.parametrize("dataset", ["nyx", "vpic"])
def test_fig17_scaling(run_once, dataset):
    res = run_once(
        fig17_scaling, dataset, scales=(256, 512, 1024, 2048, 4096)
    )
    save_result(res)
    rows = sorted(res.rows, key=lambda r: r["nranks"])
    # Weak scaling: improvement over the filter baseline is stable-to-
    # improving with scale (paper: "a larger scale slightly benefits our
    # solution").
    improvements = [r["improve_vs_filter"] for r in rows]
    assert min(improvements) > 1.0
    assert improvements[-1] >= improvements[0] * 0.9
    # Storage overhead is scale-independent (per-partition property).
    overheads = [r["storage_overhead"] for r in rows]
    assert max(overheads) - min(overheads) < 0.1
    # All-gather time grows with scale (paper Section IV-D's caveat).
    ag = [r["allgather_s"] for r in rows]
    assert ag[-1] > ag[0]
