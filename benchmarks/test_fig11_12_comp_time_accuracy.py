"""Figs. 11-12 — compression-time prediction accuracy (+ transfer)."""

from repro.bench.figures import (
    fig11_compression_time_accuracy,
    fig12_compression_time_transfer,
)
from repro.bench.harness import save_result


def test_fig11(run_once):
    res = run_once(fig11_compression_time_accuracy)
    save_result(res)
    # Calibrated on baryon density only, evaluated on every field: the
    # prediction should land close to the (noisy) actual times.
    assert res.meta["median_rel_error"] < 0.15
    assert res.meta["p90_rel_error"] < 0.35
    fitted = res.meta["fitted"]
    assert fitted["a"] < 0
    assert fitted["cmin"] < fitted["cmax"]


def test_fig12_transfer(run_once):
    res = run_once(fig12_compression_time_transfer)
    save_result(res)
    # Paper Fig. 12: parameters from the small snapshot still predict the
    # large snapshot's compression times accurately.
    assert res.meta["median_rel_error"] < 0.20
