"""Fig. 7 — per-process independent-write throughput vs request size."""

from repro.bench.figures import fig07_write_throughput
from repro.bench.harness import save_result


def test_fig07(run_once):
    res = run_once(fig07_write_throughput, nprocs=128)
    save_result(res)
    means = [r["mean_MBps"] for r in res.rows]
    # Paper: "the average throughput first increases as the data size
    # increases and stabilizes after the data size reaches a certain point".
    assert means == sorted(means)
    assert means[-1] / means[0] > 2.0  # clear ramp from small to large
    # Stabilization: the last two sizes are within 20% of each other.
    assert means[-1] / means[-2] < 1.2
