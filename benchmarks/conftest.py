"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once per session
(``benchmark.pedantic`` with one round): the experiments are deterministic
simulations, so statistical repetition adds nothing but wall time.  Each
prints the table the paper's figure corresponds to and asserts the *shape*
claims (who wins, direction of trends), never absolute seconds.
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Every benchmark is ``slow``: tier-1 (`-m "not slow"`) skips this
    whole directory; the full/nightly CI job runs it."""
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment function once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
