"""Fig. 16 — time breakdown of the four write solutions (the headline)."""

from repro.bench.figures import fig16_breakdown
from repro.bench.harness import save_result


def test_fig16(run_once):
    res = run_once(fig16_breakdown, nranks=512)
    save_result(res)
    m = res.meta
    # Ordering claims of paper Section IV-D, as shapes:
    #   collective-write-with-compression beats non-compression write,
    assert m["speedup_filter_vs_nocomp"] > 1.3  # paper: 1.87x
    #   overlapping beats the filter baseline,
    assert m["speedup_overlap_vs_filter"] > 1.3  # paper: 1.79x
    #   reordering does not hurt and usually helps,
    assert m["speedup_reorder_vs_overlap"] > 0.98  # paper: 1.30x
    #   end to end the paper reports 4.46x over non-compression.
    assert 3.0 < m["speedup_reorder_vs_nocomp"] < 6.5
    # Compression time is solution-invariant (framework improves *writing*).
    rows = {r["solution"]: r for r in res.rows}
    assert abs(rows["filter"]["compress_s"] - rows["reorder"]["compress_s"]) < 0.1 * rows[
        "filter"
    ]["compress_s"]
    # Extra space costs little relative to the original data (paper: 1.5%).
    assert m["storage_overhead_vs_original"] < 0.08
    # Effective ratio sits below the ideal ratio (paper: 14.13 vs 17.94).
    assert m["effective_ratio"] < m["ideal_ratio"]
