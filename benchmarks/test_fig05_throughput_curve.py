"""Fig. 5 — single-core compression throughput vs bit-rate."""

import numpy as np

from repro.bench.figures import fig05_throughput_curve
from repro.bench.harness import save_result


def test_fig05(run_once):
    res = run_once(fig05_throughput_curve)
    save_result(res)
    lo, hi = res.meta["band_lo_MBps"], res.meta["band_hi_MBps"]
    # Paper Fig. 5 observations: (1) throughput bounded in a common band
    # (~100-250 MB/s) across samples; (2) per-sample curves decrease with
    # bit-rate consistently.  Our calibration samples are much smaller than
    # the paper's 67 MB, so Huffman-tree build overhead drags the extreme
    # high-bit-rate points below the asymptotic Cmin — allow that sag.
    for row in res.rows:
        assert 0.3 * lo < row["throughput_MBps"] < 1.3 * hi
        if row["bit_rate"] < 12:
            assert 0.5 * lo < row["throughput_MBps"]
    for sample in {r["sample"] for r in res.rows}:
        pts = sorted(
            ((r["bit_rate"], r["throughput_MBps"]) for r in res.rows if r["sample"] == sample)
        )
        b = np.array([p[0] for p in pts])
        t = np.array([p[1] for p in pts])
        # Allow noise: overall trend (rank correlation) must be negative.
        assert np.corrcoef(b, t)[0, 1] < -0.3
