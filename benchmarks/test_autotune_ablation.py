"""Ablation — adaptive strategy selection vs every fixed strategy.

Sweeps the generated scenario matrix and simulates all four registered
strategies plus the auto-tuner's pick per cell.  The claims under test:

* the tuner's choice matches the exhaustive evaluate-all-strategies
  oracle (identical pick, or a near-tie within 1% regret) on ≥ 90% of
  cells — the PR's acceptance criterion at benchmark scale;
* across the whole matrix, adapting per workload is at least as fast as
  the best *fixed* strategy (no single strategy wins every regime, which
  is the reason the auto-tuner exists).
"""

from repro.bench.harness import ExperimentResult, save_result
from repro.core.autotune import AutoTuner
from repro.core.scenarios import scenario_matrix
from repro.core.strategy import registered_strategies
from repro.core.sweep import simulate_matrix
from repro.exec import ThreadPoolExecutor
from repro.sim.machine import BEBOP

_FIXED = ("nocomp", "filter", "overlap", "reorder")


def _autotune_ablation() -> ExperimentResult:
    cases = scenario_matrix(seeds=(0, 1))
    # The scenario × strategy sweep is the widest fan-out in the suite;
    # run it (and the per-cell tuner pricing) through the thread backend.
    with ThreadPoolExecutor() as ex:
        tuner = AutoTuner(BEBOP, executor=ex)
        cells = simulate_matrix(cases, strategies=_FIXED, machine=BEBOP, executor=ex)
        choices = [tuner.choose(case.workload) for case in cases]
    by_case = {}
    for cell in cells:
        by_case.setdefault(cell.case_label, {})[cell.strategy] = cell.makespan_seconds
    rows = []
    for case, choice in zip(cases, choices):
        sims = by_case[case.label]
        # The oracle and the regret derive from the sims already run
        # (min() keeps the first minimum — the shared tie rule).
        oracle = min(_FIXED, key=lambda n: sims[n])
        regret = sims[choice] / sims[oracle] - 1.0
        rows.append(
            {
                "scenario": case.scenario.name,
                "seed": case.seed,
                **{f"{name}_s": sims[name] for name in _FIXED},
                "auto_pick": choice,
                "oracle": oracle,
                "auto_s": sims[choice],
                "regret": regret,
            }
        )
    return ExperimentResult(
        name="ablation_autotune",
        title="Ablation — auto-tuned strategy vs each fixed strategy",
        rows=rows,
        meta={"machine": BEBOP.name, "strategies": list(registered_strategies())},
    )


def test_autotune_ablation(run_once):
    res = run_once(_autotune_ablation)
    save_result(res)
    rows = res.rows
    matched = sum(
        1 for r in rows if r["auto_pick"] == r["oracle"] or r["regret"] <= 0.01
    )
    assert matched / len(rows) >= 0.9
    # Adapting per cell beats (or ties) the best fixed strategy overall.
    auto_total = sum(r["auto_s"] for r in rows)
    best_fixed_total = min(sum(r[f"{n}_s"] for r in rows) for n in _FIXED)
    assert auto_total <= best_fixed_total * 1.02
    # And no fixed strategy is the per-cell winner everywhere — the regime
    # diversity the scenario generator is for.
    assert len({r["oracle"] for r in rows}) >= 2
