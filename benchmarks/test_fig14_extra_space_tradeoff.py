"""Fig. 14 — performance-overhead vs storage-overhead across Rspace."""

import pytest

from repro.bench.figures import fig14_extra_space_tradeoff
from repro.bench.harness import save_result
from repro.sim import BEBOP, SUMMIT


@pytest.mark.parametrize(
    "dataset,machine",
    [("nyx", SUMMIT), ("vpic", SUMMIT), ("nyx", BEBOP)],
    ids=["nyx-summit", "vpic-summit", "nyx-bebop"],
)
def test_fig14(run_once, dataset, machine):
    res = run_once(
        fig14_extra_space_tradeoff, dataset, machine, nranks=128
    )
    save_result(res)
    rows = sorted(res.rows, key=lambda r: r["rspace"])
    storage = [r["storage_overhead"] for r in rows]
    overflowing = [r["overflow_fraction"] for r in rows]
    # Storage overhead grows monotonically with the extra-space ratio...
    assert all(b >= a - 1e-9 for a, b in zip(storage[:-1], storage[1:]))
    # ...while the overflow population shrinks (the trade-off itself).
    assert all(b <= a + 1e-9 for a, b in zip(overflowing[:-1], overflowing[1:]))
    if dataset == "nyx":
        # At the bottom of the interval a non-trivial fraction of partitions
        # overflows (paper: 32.4% at 1.10x), at the top almost none.
        assert overflowing[0] > 0.01
        assert overflowing[-1] < overflowing[0]
    else:
        # On the synthetic VPIC dump the RLE-based ratio model *over*-
        # predicts sizes for the near-constant fields (Section III-D's
        # inaccuracy in the opposite direction), so slots never overflow —
        # the trade-off degenerates to pure storage cost.
        assert overflowing[-1] <= overflowing[0]
