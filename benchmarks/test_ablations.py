"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these isolate the contribution of each mechanism:

* scheduler ablation: original order vs Algorithm 1 vs Johnson's rule
  (the optimal oracle for the TIME model);
* lossless-estimator ablation: the paper-faithful RLE analysis vs
  sampling the real zlib backend;
* Eq. (3) ablation: high-ratio extra-space boost on/off.
"""

import numpy as np

from repro.bench.harness import ExperimentResult, save_result
from repro.compression import SZCompressor
from repro.core import build_workload
from repro.core.offsets import OffsetTable
from repro.core.overflow import OverflowPlan
from repro.core.scheduler import (
    CompressionTask,
    johnson_order,
    optimize_order,
    queue_time,
)
from repro.core.workload import scale_workload
from repro.core.writers import default_models
from repro.data import NyxGenerator
from repro.modeling import RatioQualityModel
from repro.sim import SUMMIT


def _scheduler_ablation() -> ExperimentResult:
    wl = build_workload("nyx", nranks=8, shape=(48, 48, 48), seed=13,
                        include_particles=True)
    wl = scale_workload(wl, nranks=64, values_per_partition=256**3)
    tmodel, wmodel = default_models(SUMMIT, 64)
    nv, pred = wl.matrix("n_values"), wl.matrix("predicted_nbytes")
    rows = []
    for r in range(0, 64, 8):
        tasks = [
            CompressionTask(
                str(f),
                tmodel.predict_seconds(int(nv[f, r]), 8.0 * pred[f, r] / nv[f, r]),
                wmodel.predict_seconds_for_bytes(float(pred[f, r])),
            )
            for f in range(wl.nfields)
        ]
        base = queue_time(tasks)
        heur = queue_time(optimize_order(tasks))
        opt = queue_time(johnson_order(tasks))
        rows.append(
            {
                "rank": r,
                "original_s": base,
                "algorithm1_s": heur,
                "johnson_s": opt,
                "alg1_gain": base / heur,
                "alg1_vs_optimal": heur / opt,
            }
        )
    return ExperimentResult(
        name="ablation_scheduler",
        title="Ablation — original vs Algorithm 1 vs Johnson (TIME model)",
        rows=rows,
        meta={},
    )


def test_scheduler_ablation(run_once):
    res = run_once(_scheduler_ablation)
    save_result(res)
    for row in res.rows:
        # Algorithm 1 never loses to the original order and sits within a
        # few percent of the provably optimal Johnson schedule.
        assert row["alg1_gain"] >= 1.0 - 1e-9
        assert row["alg1_vs_optimal"] <= 1.05


def _estimator_ablation() -> ExperimentResult:
    gen = NyxGenerator((48, 48, 48), seed=14)
    rows = []
    for estimator in ("rle", "zlib-sample"):
        errs = []
        for name in gen.field_names:
            data = gen.field(name)
            for scale in (1.0, 30.0):  # normal and extreme-ratio regimes
                codec = SZCompressor(bound=gen.error_bound(name) * scale, mode="abs")
                pred = RatioQualityModel(codec, lossless_estimator=estimator).predict(data)
                actual = len(codec.compress(data))
                errs.append(abs(pred.predicted_nbytes - actual) / actual)
        errs = np.array(errs)
        rows.append(
            {
                "estimator": estimator,
                "median_err": float(np.median(errs)),
                "p90_err": float(np.percentile(errs, 90)),
                "max_err": float(errs.max()),
            }
        )
    return ExperimentResult(
        name="ablation_lossless_estimator",
        title="Ablation — RLE vs zlib-sample lossless estimation",
        rows=rows,
        meta={},
    )


def test_estimator_ablation(run_once):
    res = run_once(_estimator_ablation)
    save_result(res)
    by_name = {r["estimator"]: r for r in res.rows}
    # Sampling the real backend dominates the paper's RLE analysis in the
    # extreme regime — exactly the weakness Section III-D describes.
    assert by_name["zlib-sample"]["p90_err"] <= by_name["rle"]["p90_err"] + 0.02


def _eq3_ablation() -> ExperimentResult:
    """How much overflow does the Eq. (3) boost prevent at high ratios?"""
    wl = build_workload(
        "nyx", nranks=8, shape=(48, 48, 48), seed=15, bound_scale=60.0
    )  # extreme ratios: the model's weak regime
    pred = wl.matrix("predicted_nbytes")
    orig = wl.matrix("original_nbytes")
    actual = wl.matrix("actual_nbytes")
    rows = []
    for label, rspace_fn in (
        ("eq3_on", lambda: OffsetTable.compute(pred, orig, 1.25, 4096)),
        ("eq3_off", lambda: OffsetTable.compute(pred, pred * 2, 1.25, 4096)),
    ):
        # eq3_off trick: claiming original==2x predicted keeps every ratio
        # below the threshold, disabling the boost while preserving slots.
        table = rspace_fn()
        plan = OverflowPlan.compute(actual, table.reserved, table.data_end)
        rows.append(
            {
                "variant": label,
                "overflow_partitions": plan.n_overflowing,
                "overflow_bytes": plan.total_overflow,
                "reserved_total": table.total_reserved,
            }
        )
    return ExperimentResult(
        name="ablation_eq3",
        title="Ablation — Eq.(3) extra-space boost at extreme ratios",
        rows=rows,
        meta={"bound_scale": 60.0},
    )


def test_eq3_ablation(run_once):
    res = run_once(_eq3_ablation)
    save_result(res)
    on = next(r for r in res.rows if r["variant"] == "eq3_on")
    off = next(r for r in res.rows if r["variant"] == "eq3_off")
    # The boost spends more reservation to reduce overflow events.
    assert on["reserved_total"] >= off["reserved_total"]
    assert on["overflow_partitions"] <= off["overflow_partitions"]
