"""Fig. 9 — mapping a performance/storage weight to an extra-space ratio."""

from repro.bench.figures import fig09_extra_space_mapping
from repro.bench.harness import save_result


def test_fig09(run_once):
    res = run_once(fig09_extra_space_mapping)
    save_result(res)
    rows = res.rows
    # Supported interval [1.1, 1.43] (paper Section III-D), monotone, with
    # the default 1.25 reachable near the balanced weight.
    assert rows[0]["extra_space_ratio"] == 1.1
    assert abs(rows[-1]["extra_space_ratio"] - 1.43) < 1e-9
    ratios = [r["extra_space_ratio"] for r in rows]
    assert ratios == sorted(ratios)
    mid = min(rows, key=lambda r: abs(r["performance_weight"] - 0.5))
    assert abs(mid["extra_space_ratio"] - 1.25) < 0.04
