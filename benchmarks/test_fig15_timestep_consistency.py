"""Fig. 15 — overhead consistency across simulation time-steps."""

from repro.bench.figures import fig15_timestep_consistency
from repro.bench.harness import save_result


def test_fig15(run_once):
    res = run_once(fig15_timestep_consistency, nranks=128)
    save_result(res)
    lo, hi = res.meta["storage_range"]
    # Paper: with the fixed default Rspace=1.25 the storage overhead stays
    # consistent across time-steps (no blow-up as structure grows).
    assert hi - lo < 0.35
    assert all(r["storage_overhead"] < 1.0 for r in res.rows)
    # Redshifts decrease along the series (time moves forward).
    zs = [r["redshift"] for r in res.rows]
    assert zs == sorted(zs, reverse=True)
