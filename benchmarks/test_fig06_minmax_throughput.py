"""Fig. 6 — min/max compression throughput across 30 data samples."""

from repro.bench.figures import fig06_minmax_throughput
from repro.bench.harness import save_result


def test_fig06(run_once):
    res = run_once(fig06_minmax_throughput, n_samples=30)
    save_result(res)
    # Paper: "the maximum and minimum compression throughput are similarly
    # bounded across different data samples (about 120-250 MB/s)".  Our
    # samples are far smaller than the paper's 67.1 MB, so Huffman-tree
    # build overhead depresses the minima somewhat; the clustering claims
    # are what must hold.
    assert res.meta["min_spread"] < 2.0  # sample minima cluster
    assert res.meta["max_spread"] < 2.0  # sample maxima cluster
    assert 20 < res.meta["global_min"] < 200
    assert 150 < res.meta["global_max"] < 400
