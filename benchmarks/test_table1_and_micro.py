"""Table I (dataset inventory) and Section III-E scheduling-overhead claim."""

from repro.bench.figures import scheduler_overhead, table1_datasets
from repro.bench.harness import save_result


def test_table1(run_once):
    res = run_once(table1_datasets)
    save_result(res)
    names = [r["name"] for r in res.rows]
    assert names == ["nyx", "nyx-particles", "vpic"]
    fields = {r["name"]: r["fields"] for r in res.rows}
    assert fields == {"nyx": 6, "nyx-particles": 9, "vpic": 8}


def test_scheduler_overhead(run_once):
    res = run_once(scheduler_overhead)
    save_result(res)
    realistic = res.rows[0]  # 9 fields, 256^3 partitions
    extreme = res.rows[-1]  # the paper's N=32768, n=100 stress case
    # Realistic configurations: negligible, comfortably under 1%.
    assert realistic["overhead_fraction"] < 0.01
    # Even the extreme case completes in well under a second of wall time
    # (the paper's 0.17% figure compares C++ against C++; ours is Python).
    assert extreme["optimize_s"] < 2.0
